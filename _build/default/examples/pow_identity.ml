(* Proof-of-work identities end to end (§IV).

       dune exec examples/pow_identity.exe

   Follows one epoch of the identity machinery: the network
   propagates a global random string; a participant mines an ID
   against it; peers verify the credential; the epoch rolls over and
   the credential expires. Then the adversary tries its two classic
   moves — pre-computation and placement targeting — and loses. *)

let () =
  let rng = Prng.Rng.create 1001 in
  let epoch_steps = 2048 in
  let scheme = Pow.Identity.make_scheme ~system_key:"pow-demo" ~epoch_steps in
  let metrics = Sim.Metrics.create () in

  Printf.printf "proof-of-work identities: T = %d steps/epoch, tau = %Ld\n\n" epoch_steps
    (Pow.Identity.tau scheme);

  (* 1. The network agrees on a global random string (Lemma 12). *)
  let _, graph = Experiments.Common.build_tiny rng ~n:512 ~beta:0.05 () in
  let prop =
    Randstring.Propagate.run (Prng.Rng.split rng) graph ~epoch_steps
      Randstring.Propagate.default_config
  in
  Printf.printf "epoch i: string propagation over %d participants -> agreement: %b\n"
    prop.Randstring.Propagate.participants prop.Randstring.Propagate.agreement;
  Printf.printf "         solution sets hold %.0f strings on average (2 ln n = %.0f)\n"
    prop.Randstring.Propagate.solution_set_sizes.Stats.Descriptive.mean
    (2. *. log 512.);
  let r_i = 0xC0FFEEL in
  Printf.printf "         (the minimum's value stands in as r_i = %Lx below)\n\n" r_i;

  (* 2. A good participant mines an ID for the next epoch: T/2 hash
     evaluations in expectation. *)
  let budget = Pow.Budget.create ~evals:(Pow.Budget.good_id_budget ~epoch_steps * 20) in
  (match Pow.Identity.solve (Prng.Rng.split rng) scheme ~budget ~rand_string:r_i ~metrics with
  | None -> Printf.printf "mining failed (astronomically unlikely)\n"
  | Some credential ->
      Printf.printf "mining: found sigma after %d hash evaluations (expected ~%d)\n"
        (Pow.Budget.spent budget)
        (Pow.Budget.good_id_budget ~epoch_steps);
      Printf.printf "        ID = %s (uniform on the ring, whatever sigma we picked)\n"
        (Idspace.Point.to_string credential.Pow.Identity.id);

      (* 3. Any peer verifies against its solution set. *)
      Printf.printf "verify: against current strings -> %b\n"
        (Pow.Identity.verify scheme credential ~known_strings:[ 1L; r_i; 9L ]);

      (* 4. Epoch rollover: a new string, the credential expires. *)
      let r_next = 0xBEEFL in
      Printf.printf "expiry: after the string rotates to r_{i+1} -> %b\n\n"
        (Pow.Identity.verify scheme credential ~known_strings:[ r_next ]));

  (* 5. The pre-computation attack: stockpiling across 4 epochs. *)
  let per_epoch = Pow.Budget.adversary_budget ~beta:0.10 ~n:512 ~epoch_steps in
  let stockpile =
    List.concat
      (List.init 4 (fun i ->
           let budget = Pow.Budget.create ~evals:per_epoch in
           Pow.Identity.solve_all (Prng.Rng.split rng) scheme ~budget
             ~rand_string:(Int64.of_int (500 + i))
             ~metrics))
  in
  let usable =
    List.filter (fun c -> Pow.Identity.verify scheme c ~known_strings:[ 503L ]) stockpile
  in
  Printf.printf "adversary: stockpiled %d IDs over 4 epochs; usable this epoch: %d\n"
    (List.length stockpile) (List.length usable);

  (* 6. Placement targeting under the broken single-hash scheme. *)
  let target =
    Idspace.Interval.make ~from:(Idspace.Point.of_float 0.25)
      ~until:(Idspace.Point.of_float 0.30)
  in
  let budget = Pow.Budget.create ~evals:per_epoch in
  let clustered = ref 0 in
  let continue = ref true in
  while !continue do
    match
      Pow.Identity.solve_single_hash_targeted (Prng.Rng.split rng) scheme ~budget ~target
        ~metrics
    with
    | Some _ -> incr clustered
    | None -> continue := false
  done;
  Printf.printf
    "adversary: under a single-hash scheme it just minted %d IDs inside one 5%% arc;\n"
    !clustered;
  Printf.printf "           the two-hash composition (f after g) makes that impossible.\n"
