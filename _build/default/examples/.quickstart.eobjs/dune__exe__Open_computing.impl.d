examples/open_computing.ml: Adversary Agreement Array Hashing Idspace Overlay Printf Prng Ring Tinygroups Workload
