examples/name_service.ml: Adversary Idspace Kvstore Printf Prng Tinygroups
