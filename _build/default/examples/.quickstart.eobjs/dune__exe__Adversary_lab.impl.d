examples/adversary_lab.ml: Adversary Agreement Array Hashing Idspace Int64 Interval List Overlay Point Pow Printf Prng Protocol Ring Sim Tinygroups
