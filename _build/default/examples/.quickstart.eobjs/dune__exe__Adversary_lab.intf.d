examples/adversary_lab.mli:
