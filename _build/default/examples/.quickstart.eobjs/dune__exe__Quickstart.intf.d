examples/quickstart.mli:
