examples/distributed_storage.ml: Adversary Agreement Array Hashing Idspace List Overlay Printf Prng Ring String Tinygroups Workload
