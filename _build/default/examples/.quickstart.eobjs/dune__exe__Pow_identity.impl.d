examples/pow_identity.ml: Experiments Idspace Int64 List Pow Printf Prng Randstring Sim Stats
