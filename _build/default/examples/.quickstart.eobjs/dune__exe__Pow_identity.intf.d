examples/pow_identity.mli:
