examples/churn_resilience.ml: Experiments List Printf Prng Tinygroups
