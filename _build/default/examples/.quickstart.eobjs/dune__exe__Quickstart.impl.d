examples/quickstart.ml: Adversary Array Estimate Experiments Hashing Idspace List Overlay Point Printf Prng Tinygroups
