examples/open_computing.mli:
