examples/full_system.ml: Adversary Array Idspace Int64 Kvstore Pow Printf Prng Protocol Randstring Sim Stats Tinygroups Workload
