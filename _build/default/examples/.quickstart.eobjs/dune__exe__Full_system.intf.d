examples/full_system.mli:
