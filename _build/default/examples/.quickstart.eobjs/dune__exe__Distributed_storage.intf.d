examples/distributed_storage.mli:
