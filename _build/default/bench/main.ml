(* The benchmark harness: regenerates every table/figure-equivalent of
   the paper (E0-E18, F1; see DESIGN.md §4 and EXPERIMENTS.md) and
   runs the Bechamel timing benches (B0-B7).

   Usage:
     dune exec bench/main.exe                       # everything, standard scale
     dune exec bench/main.exe -- --scale quick      # fast smoke run
     dune exec bench/main.exe -- --only e1,e5,f1    # a subset
     dune exec bench/main.exe -- --csv results      # also dump CSVs
     dune exec bench/main.exe -- --skip-timings     # tables only
     dune exec bench/main.exe -- --verbose          # protocol debug logs *)

type kind =
  | Table of (Prng.Rng.t -> Experiments.Scale.t -> Experiments.Table.t)
  | Text of (Prng.Rng.t -> string)

let experiments =
  [
    ("e0", "input-graph properties P1-P4 (SI-C)", Table Experiments.Exp_overlay.run_e0);
    ("e1", "red-group fraction vs n, beta (SII)", Table Experiments.Exp_static.run_e1);
    ("e2", "search success (Lemma 4 / Thm 3)", Table Experiments.Exp_static.run_e2);
    ("e3", "cost comparison (Corollary 1)", Table Experiments.Exp_costs.run_e3);
    ("e4", "paired epochs under churn (SIII)", Table Experiments.Exp_dynamic.run_e4);
    ("e5", "single-graph ablation (SIII)", Table Experiments.Exp_dynamic.run_e5);
    ("e6", "PoW bound + uniformity (Lemma 11)", Table Experiments.Exp_pow.run_e6);
    ("e7", "pre-computation attack (SIV-B)", Table Experiments.Exp_pow.run_e7);
    ("e8", "string propagation (Lemma 12)", Table Experiments.Exp_strings.run_e8);
    ("e9", "state costs (Lemma 10)", Table Experiments.Exp_costs.run_e9);
    ("e10", "group-size sweep knee (SI-D)", Table Experiments.Exp_sweep.run_e10);
    ("e11", "cuckoo-rule baseline ([47])", Table Experiments.Exp_cuckoo.run_e11);
    ("e12", "bootstrap pools (Appendix IX)", Table Experiments.Exp_bootstrap.run_e12);
    ("e13", "variable system size (SIII extension)", Table Experiments.Exp_drift.run_e13);
    ("e14", "verification ablation (Lemma 10)", Table Experiments.Exp_spam.run_e14);
    ("e15", "recursive vs iterative search (App. VI)", Table Experiments.Exp_overlay.run_e15);
    ("e16", "multi-route retries via chord++", Table Experiments.Exp_overlay.run_e16);
    ("e17", "WAN latency vs group size ([51])", Table Experiments.Exp_latency.run_e17);
    ("e18", "per-event join/departure cost (fn. 13)", Table Experiments.Exp_events.run_e18);
    ("e19", "member-level protocol validation", Table Experiments.Exp_protocol.run_e19);
    ("e20", "epoch recursion: theory vs measurement", Table Experiments.Exp_theory.run_e20);
    ("f1", "Figure 1 search trace", Text Experiments.Exp_figure1.render);
  ]

let parse_args () =
  let scale = ref Experiments.Scale.Standard in
  let only = ref None in
  let skip_timings = ref false in
  let seed = ref 1 in
  let csv_dir = ref None in
  let verbose = ref false in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
        (match Experiments.Scale.of_string v with
        | Some s -> scale := s
        | None -> failwith ("unknown scale: " ^ v));
        go rest
    | "--only" :: v :: rest ->
        only := Some (String.split_on_char ',' (String.lowercase_ascii v));
        go rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        go rest
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        go rest
    | "--skip-timings" :: rest ->
        skip_timings := true;
        go rest
    | "--verbose" :: rest ->
        verbose := true;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv));
  (!scale, !only, !skip_timings, !seed, !csv_dir, !verbose)

let () =
  let scale, only, skip_timings, seed, csv_dir, verbose = parse_args () in
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let wanted id = match only with None -> true | Some ids -> List.mem id ids in
  Printf.printf
    "tinygroups benchmark harness — scale=%s seed=%d\n\
     (paper: Jaiyeola et al., Tiny Groups Tackle Byzantine Adversaries, IPDPS 2018)\n"
    (Experiments.Scale.to_string scale)
    seed;
  List.iter
    (fun (id, blurb, kind) ->
      if wanted id then begin
        Printf.printf "\n### %s — %s\n%!" (String.uppercase_ascii id) blurb;
        let t0 = Unix.gettimeofday () in
        (match kind with
        | Table run ->
            let table = run (Prng.Rng.create seed) scale in
            Experiments.Table.print table;
            Option.iter
              (fun dir ->
                let path = Experiments.Table.save_csv table ~dir ~slug:id in
                Printf.printf "   [csv: %s]\n" path)
              csv_dir
        | Text run -> print_string (run (Prng.Rng.create seed)));
        Printf.printf "   [%s took %.1fs]\n%!" (String.uppercase_ascii id)
          (Unix.gettimeofday () -. t0)
      end)
    experiments;
  if (not skip_timings) && (match only with None -> true | Some ids -> List.mem "timings" ids)
  then Timings.run ()
