bench/main.mli:
