bench/main.ml: Array Experiments List Logs Logs_fmt Option Printf Prng String Sys Timings Unix
