(** Labelled random-oracle families over the ID space.

    The construction (paper §I-C, §III-A, §IV-A) uses several
    independent hash functions with range [0,1): [h1] and [h2] choose
    group members, [f] and [g] build proof-of-work identifiers, and [h]
    scores random strings. Under the random-oracle assumption each is an
    independent uniform function; we realise them as HMAC-SHA256 keyed
    by a per-function label and a per-deployment system key (the "fixed
    parameter included as part of the application").

    Outputs are exposed as 62-bit unsigned integers, the resolution of
    the fixed-point ID space in {!module:Idspace}. *)

type t
(** One named oracle (an independent uniform function). *)

val make : system_key:string -> label:string -> t
(** [make ~system_key ~label] derives the oracle named [label] for the
    deployment identified by [system_key]. Same inputs, same function —
    all participants can evaluate it. *)

val label : t -> string
(** The oracle's label. *)

val query_string : t -> string -> int64
(** [query_string t s] evaluates the oracle on [s]; result is uniform
    on [0, 2^62). *)

val query_u62 : t -> int64 -> int64
(** Evaluate on a numeric input (e.g. a point of the ID space or a
    puzzle solution), encoded canonically. Uniform on [0, 2^62). *)

val query_indexed : t -> int64 -> int -> int64
(** [query_indexed t w i] is the oracle applied to the pair [(w, i)] —
    the [h1(w, i)] / [h2(w, i)] evaluations used to draw the [i]-th
    member of the group led by [w] (§III-A). Uniform on [0, 2^62). *)

val query_pair : t -> int64 -> int64 -> int64
(** Oracle on a pair of numeric values (e.g. [sigma XOR r] is passed
    pre-combined, but epoch-tagged queries use pairs). *)

val to_unit_float : int64 -> float
(** Map a 62-bit oracle output to the unit interval [0,1). *)

val u62_mask : int64
(** [2^62 - 1]: outputs satisfy [0 <= v <= u62_mask]. *)
