lib/hashing/oracle.mli:
