lib/hashing/oracle.ml: Bytes Char Int64 Sha256
