type digest = string

(* Round constants: first 32 bits of the fractional parts of the cube
   roots of the first 64 primes (FIPS 180-4 §4.2.2). *)
let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl; 0x59f111f1l;
     0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l; 0xe49b69c1l; 0xefbe4786l;
     0x0fc19dc6l; 0x240ca1ccl; 0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l; 0xa2bfe8a1l; 0xa81a664bl;
     0xc24b8b70l; 0xc76c51a3l; 0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al;
     0x5b9cca4fl; 0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array; (* 8 chaining words *)
  buf : Bytes.t;   (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* bytes absorbed *)
  w : int32 array; (* 64-entry message schedule, reused across blocks *)
}

let init () =
  {
    h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl; 0x9b05688cl;
         0x1f83d9abl; 0x5be0cd19l |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0l;
  }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))

let ( +% ) = Int32.add

let compress ctx block off =
  let w = ctx.w in
  for t = 0 to 15 do
    let base = off + (4 * t) in
    let b i = Int32.of_int (Char.code (Bytes.get block (base + i))) in
    w.(t) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for t = 16 to 63 do
    let s0 =
      Int32.logxor
        (Int32.logxor (rotr w.(t - 15) 7) (rotr w.(t - 15) 18))
        (Int32.shift_right_logical w.(t - 15) 3)
    in
    let s1 =
      Int32.logxor
        (Int32.logxor (rotr w.(t - 2) 17) (rotr w.(t - 2) 19))
        (Int32.shift_right_logical w.(t - 2) 10)
    in
    w.(t) <- w.(t - 16) +% s0 +% w.(t - 7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = Int32.logxor (Int32.logxor (rotr !e 6) (rotr !e 11)) (rotr !e 25) in
    let ch = Int32.logxor (Int32.logand !e !f) (Int32.logand (Int32.lognot !e) !g) in
    let t1 = !hh +% s1 +% ch +% k.(t) +% w.(t) in
    let s0 = Int32.logxor (Int32.logxor (rotr !a 2) (rotr !a 13)) (rotr !a 22) in
    let maj =
      Int32.logxor
        (Int32.logxor (Int32.logand !a !b) (Int32.logand !a !c))
        (Int32.logand !b !c)
    in
    let t2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% t1;
    d := !c;
    c := !b;
    b := !a;
    a := t1 +% t2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let feed_sub ctx src pos len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and len = ref len in
  (* Top up a partially filled block first. *)
  if ctx.buf_len > 0 then begin
    let take = min !len (64 - ctx.buf_len) in
    Bytes.blit_string src !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    len := !len - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !len >= 64 do
    Bytes.blit_string src !pos ctx.buf 0 64;
    compress ctx ctx.buf 0;
    pos := !pos + 64;
    len := !len - 64
  done;
  if !len > 0 then begin
    Bytes.blit_string src !pos ctx.buf 0 !len;
    ctx.buf_len <- !len
  end

let feed_string ctx s = feed_sub ctx s 0 (String.length s)

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Append 0x80, zero-pad to 56 mod 64, then the 64-bit length. *)
  let pad_len =
    let rem = (ctx.buf_len + 1) mod 64 in
    if rem <= 56 then 56 - rem + 1 else 64 - rem + 56 + 1
  in
  let pad = Bytes.make (pad_len + 8) '\x00' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * (7 - i))) 0xFFL)))
  done;
  (* Bypass the total counter: padding is not message bytes. *)
  let saved = ctx.total in
  feed_sub ctx (Bytes.to_string pad) 0 (Bytes.length pad);
  ctx.total <- saved;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let word = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word 24) 0xFFl)));
    Bytes.set out ((4 * i) + 1) (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word 16) 0xFFl)));
    Bytes.set out ((4 * i) + 2) (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical word 8) 0xFFl)));
    Bytes.set out ((4 * i) + 3) (Char.chr (Int32.to_int (Int32.logand word 0xFFl)))
  done;
  Bytes.unsafe_to_string out

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

let digest_bytes b = digest_string (Bytes.to_string b)

let to_raw d = d

let hex_chars = "0123456789abcdef"

let to_hex d =
  let out = Bytes.create 64 in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      Bytes.set out (2 * i) hex_chars.[v lsr 4];
      Bytes.set out ((2 * i) + 1) hex_chars.[v land 0xF])
    d;
  Bytes.unsafe_to_string out

let prefix_int64 d =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code d.[i]))
  done;
  !acc

let hmac ~key msg =
  let block = 64 in
  let key = if String.length key > block then (digest_string key :> string) else key in
  let pad fill =
    let b = Bytes.make block fill in
    String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor Char.code fill))) key;
    Bytes.unsafe_to_string b
  in
  let ipad = pad '\x36' and opad = pad '\x5c' in
  let inner = digest_string (ipad ^ msg) in
  digest_string (opad ^ (inner :> string))
