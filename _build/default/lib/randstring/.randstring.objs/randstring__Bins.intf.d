lib/randstring/bins.mli:
