lib/randstring/propagate.ml: Adversary Array Bins Float Group Group_graph Hashtbl Idspace Int List Logs Option Overlay Params Point Population Prng Queue Seq Set Stats Tinygroups
