lib/randstring/propagate.mli: Prng Stats Tinygroups
