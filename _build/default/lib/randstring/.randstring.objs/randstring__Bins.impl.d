lib/randstring/bins.ml: Array List
