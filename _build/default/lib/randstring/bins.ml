type item = {
  output : float;
  tag : int;
  from_adversary : bool;
}

type t = {
  cap : int;
  best : float array;  (* per-bin record; infinity when empty *)
  counters : int array;
  mutable stored : item list;
}

let create ~n ~t_steps ~b ~c0 =
  if n < 2 || t_steps < 2 then invalid_arg "Bins.create";
  let bins =
    max 1 (int_of_float (ceil (b *. log (float_of_int n *. float_of_int t_steps))))
  in
  let cap = max 1 (int_of_float (ceil (c0 *. log (float_of_int n)))) in
  { cap; best = Array.make bins infinity; counters = Array.make bins 0; stored = [] }

let bin_count t = Array.length t.best
let cap t = t.cap

let bin_of_output t output =
  if output <= 0. || output >= 1. then invalid_arg "Bins.bin_of_output";
  (* B_j = [2^-j, 2^-(j-1)), 1-indexed in the paper; 0-based here. *)
  let j = int_of_float (floor (-.log output /. log 2.)) in
  min j (bin_count t - 1)

let offer t item =
  let j = bin_of_output t item.output in
  if item.output < t.best.(j) && t.counters.(j) < t.cap then begin
    t.best.(j) <- item.output;
    t.counters.(j) <- t.counters.(j) + 1;
    t.stored <- item :: t.stored;
    true
  end
  else false

let accepted t = t.stored

let min_item t =
  List.fold_left
    (fun best item ->
      match best with
      | Some b when b.output <= item.output -> best
      | _ -> Some item)
    None t.stored

let solution_set t ~size =
  let sorted = List.sort (fun a b -> compare a.output b.output) t.stored in
  List.filteri (fun i _ -> i < size) sorted
