(** The bins-and-counters filter of the string-propagation protocol
    (Appendix VIII).

    Each ID keeps bins [B_j = [2^-j, 2^-(j-1))] for
    [j = 1 .. b ln(nT)] over the hash outputs of circulating strings,
    with a counter per bin capped at [c0 ln n]. A received string is
    {e accepted} (stored and forwarded) only when its output is a new
    record within its bin and the bin's counter has room — once
    [c0 ln n] record-breakers landed in a bin, w.h.p. strictly
    smaller outputs exist in deeper bins, so the bin retires. This
    caps any ID's total forwards at [O(ln n * ln (nT))]. *)

type item = {
  output : float;  (** [h(s XOR r)], uniform on (0,1). *)
  tag : int;  (** Unique identity of the underlying string. *)
  from_adversary : bool;
}

type t

val create : n:int -> t_steps:int -> b:float -> c0:float -> t
(** [b ln (n * t_steps)] bins with per-bin cap [c0 ln n] (both at
    least 1). *)

val bin_count : t -> int
val cap : t -> int

val bin_of_output : t -> float -> int
(** 0-based bin index; outputs below the deepest bin clamp into it,
    outputs in [1/2, 1) land in bin 0. Requires [0 < output < 1]. *)

val offer : t -> item -> bool
(** Accept-and-count, per the protocol rule. Returns whether the item
    must be stored and forwarded. Re-offering an already-seen output
    never re-forwards (acceptance requires a {e strictly} smaller
    record). *)

val accepted : t -> item list
(** Everything accepted so far, unordered. *)

val min_item : t -> item option
(** The accepted item with the smallest output. *)

val solution_set : t -> size:int -> item list
(** The protocol's [R]: the accepted strings with the smallest
    outputs, deepest bins first, at most [size] of them; sorted by
    increasing output. *)
