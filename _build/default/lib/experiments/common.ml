open Adversary

let h1 = Hashing.Oracle.make ~system_key:"tinygroups-repro" ~label:"h1"

let build_sized rng ~sizing ~n ~beta () =
  let params = Tinygroups.Params.with_sizing Tinygroups.Params.default sizing in
  let params = { params with Tinygroups.Params.beta } in
  let pop =
    Population.generate (Prng.Rng.split rng) ~n ~beta ~strategy:Placement.Uniform
  in
  let overlay = Overlay.Chord.make (Population.ring pop) in
  (pop, Tinygroups.Group_graph.build_direct ~params ~population:pop ~overlay ~member_oracle:h1)

let build_tiny rng ?(params = Tinygroups.Params.default)
    ?(overlay = Tinygroups.Epoch.Chord) ~n ~beta () =
  let params = { params with Tinygroups.Params.beta } in
  let pop =
    Population.generate (Prng.Rng.split rng) ~n ~beta ~strategy:Placement.Uniform
  in
  let ov = Tinygroups.Epoch.build_overlay overlay (Population.ring pop) in
  ( pop,
    Tinygroups.Group_graph.build_direct ~params ~population:pop ~overlay:ov
      ~member_oracle:h1 )
