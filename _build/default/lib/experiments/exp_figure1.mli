(** F1: Figure 1 — a concrete search in the input graph H and its
    mirror in the group graph G, rendered as text.

    Builds a small seeded system, routes a search, and draws each hop
    as an all-to-all exchange between the corresponding groups,
    marking red groups with a "B" as the figure does. A second trace
    plants a red group mid-path to show the truncation rule. *)

val render : Prng.Rng.t -> string
