let run_e14 rng scale =
  let n = match scale with Scale.Quick -> 512 | _ -> 2048 in
  let beta = 0.10 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14 (Lemma 10 ablation): bogus-request verification, n=%d, beta=%.2f — \
            accepted spam per 1000 requests"
           n beta)
      ~columns:
        [
          "spam/bad ID";
          "requests";
          "accepted (paired verify)";
          "accepted (single verify)";
          "accepted (no verify)";
        ]
  in
  let h1 = Common.h1 in
  let h2 = Hashing.Oracle.make ~system_key:"tinygroups-repro" ~label:"h2" in
  let params = { Tinygroups.Params.default with Tinygroups.Params.beta } in
  let pop =
    Adversary.Population.generate (Prng.Rng.split rng) ~n ~beta
      ~strategy:Adversary.Placement.Uniform
  in
  let overlay = Overlay.Chord.make (Adversary.Population.ring pop) in
  let g1 =
    Tinygroups.Group_graph.build_direct ~params ~population:pop ~overlay ~member_oracle:h1
  in
  let g2 =
    Tinygroups.Group_graph.build_direct ~params ~population:pop ~overlay ~member_oracle:h2
  in
  let paired = Tinygroups.Membership.make_old_pair ~failure:`Majority g1 (Some g2) in
  let single = Tinygroups.Membership.make_old_pair ~failure:`Majority g1 None in
  let goods = Adversary.Population.good_ids pop in
  let metrics = Sim.Metrics.create () in
  let bad_count = Adversary.Population.bad_count pop in
  List.iter
    (fun spam_per_bad ->
      let requests = spam_per_bad * bad_count in
      let count pair =
        let hits = ref 0 in
        for _ = 1 to requests do
          let victim = goods.(Prng.Rng.int rng (Array.length goods)) in
          if Tinygroups.Membership.spam_accepted (Prng.Rng.split rng) metrics pair ~victim
          then incr hits
        done;
        !hits
      in
      let p = count paired and s = count single in
      let per_k hits = 1000. *. float_of_int hits /. float_of_int requests in
      Table.add_row table
        [
          Table.fint spam_per_bad;
          Table.fint requests;
          Printf.sprintf "%d (%.1f/1k)" p (per_k p);
          Printf.sprintf "%d (%.1f/1k)" s (per_k s);
          Printf.sprintf "%d (1000.0/1k)" requests;
        ])
    [ 1; 5; 20 ];
  Table.add_note table
    "Without verification every request inflates a victim's state; with it only";
  Table.add_note table
    "requests whose verification search was hijacked land (a tunable 1/poly rate).";
  table
