(** Experiment sizing presets.

    [Quick] keeps every experiment under a few seconds (CI smoke),
    [Standard] is the default reported in EXPERIMENTS.md, [Full]
    approaches the sizes used by the cited prior work (e.g. [47]'s
    [n = 8192], 10^5 churn events) at the cost of minutes of
    runtime. *)

type t = Quick | Standard | Full

val of_string : string -> t option
val to_string : t -> string

val n_sweep : t -> int list
(** System sizes for the static sweeps. *)

val searches : t -> int
(** Search samples per configuration. *)

val epochs : t -> int
(** Epochs for the dynamic experiments. *)

val dynamic_n : t -> int
(** System size for the dynamic experiments. *)

val trials : t -> int
(** Independent repetitions to average over. *)

val cuckoo_n : t -> int
val cuckoo_rounds : t -> int
