(** Shared builders for the experiment modules. *)

open Adversary

val build_tiny :
  Prng.Rng.t ->
  ?params:Tinygroups.Params.t ->
  ?overlay:Tinygroups.Epoch.overlay_kind ->
  n:int ->
  beta:float ->
  unit ->
  Population.t * Tinygroups.Group_graph.t
(** One freshly generated population and its directly built
    tiny-group graph (member oracle ["h1"]). *)

val build_sized :
  Prng.Rng.t ->
  sizing:Tinygroups.Params.sizing ->
  n:int ->
  beta:float ->
  unit ->
  Population.t * Tinygroups.Group_graph.t
(** Same with an explicit sizing rule (baselines and sweeps). *)

val h1 : Hashing.Oracle.t
(** The deployment's member oracle, shared so graphs are comparable
    across experiments. *)
