(** Fixed-width table rendering for experiment reports.

    Every experiment prints its results as an aligned text table with
    a caption tying it back to the paper (EXPERIMENTS.md records the
    same tables). *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows must match the column count. *)

val add_note : t -> string -> unit
(** Free-form footnote printed under the table. *)

val print : t -> unit
(** Render to stdout. *)

val render : t -> string

val to_csv : t -> string
(** Comma-separated rendering (header row + data rows; cells with
    commas or quotes are quoted). Notes are emitted as trailing
    [# ...] comment lines. *)

val save_csv : t -> dir:string -> slug:string -> string
(** Write the CSV to [dir/slug.csv] (creating [dir] if needed) and
    return the path. *)

val title : t -> string

(** Formatting helpers. *)

val fint : int -> string
val ffloat : ?digits:int -> float -> string
val fpct : float -> string
(** A probability as a percentage with two decimals. *)

val fsci : float -> string
(** Scientific notation with two digits. *)
