let run_e12 rng scale =
  let table =
    Table.create
      ~title:
        "E12 (Appendix IX): bootstrap pools — groups contacted vs pooled size and \
         good-majority rate"
      ~columns:
        [ "n"; "beta"; "groups pooled"; "pool size mean"; "good majority"; "recipe?" ]
  in
  let trials = 200 in
  let ns = match scale with Scale.Quick -> [ 1024 ] | _ -> [ 1024; 4096 ] in
  List.iter
    (fun n ->
      let recipe = max 1 (int_of_float (ceil (log (float_of_int n) /. log (log (float_of_int n))))) in
      List.iter
        (fun beta ->
          let _, g = Common.build_tiny rng ~n ~beta () in
          List.iter
            (fun count ->
              let ok = ref 0 and size_acc = ref 0 in
              for _ = 1 to trials do
                let ids, majority =
                  Tinygroups.Membership.bootstrap_pool (Prng.Rng.split rng) g ~count
                in
                if majority then incr ok;
                size_acc := !size_acc + Array.length ids
              done;
              Table.add_row table
                [
                  Table.fint n;
                  Table.ffloat beta;
                  Table.fint count;
                  Table.ffloat ~digits:1 (float_of_int !size_acc /. float_of_int trials);
                  Table.fpct (float_of_int !ok /. float_of_int trials);
                  (if count = recipe then "<- ceil(ln n / lnln n)" else "");
                ])
            (List.sort_uniq compare [ 1; 2; recipe; 2 * recipe ]))
        [ 0.10; 0.30 ])
    ns;
  Table.add_note table
    (Printf.sprintf "%d trials per row; the paper's recipe pools ~ln n / lnln n groups"
       trials);
  Table.add_note table
    "so the pooled O(log n) IDs carry a good majority w.h.p. even at high beta.";
  table
