lib/experiments/scale.ml:
