lib/experiments/common.ml: Adversary Hashing Overlay Placement Population Prng Tinygroups
