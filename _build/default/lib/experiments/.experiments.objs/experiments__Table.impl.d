lib/experiments/table.ml: Buffer Filename List Printf String Sys
