lib/experiments/exp_sweep.mli: Prng Scale Table
