lib/experiments/scale.mli:
