lib/experiments/exp_static.ml: Common Float Format List Prng Scale Stats Table Tinygroups
