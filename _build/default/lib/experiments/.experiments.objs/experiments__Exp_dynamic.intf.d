lib/experiments/exp_dynamic.mli: Prng Scale Table Tinygroups
