lib/experiments/exp_spam.ml: Adversary Array Common Hashing List Overlay Printf Prng Scale Sim Table Tinygroups
