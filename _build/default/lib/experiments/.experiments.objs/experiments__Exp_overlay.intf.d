lib/experiments/exp_overlay.mli: Prng Scale Table
