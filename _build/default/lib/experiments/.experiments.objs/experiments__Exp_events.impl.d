lib/experiments/exp_events.ml: Array Common Hashing Idspace List Prng Scale Sim Table Tinygroups
