lib/experiments/exp_protocol.ml: Array Common Idspace List Printf Prng Protocol Scale Sim Stats Table Tinygroups
