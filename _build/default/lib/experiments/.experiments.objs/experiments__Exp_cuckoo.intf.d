lib/experiments/exp_cuckoo.mli: Prng Scale Table
