lib/experiments/exp_theory.ml: Array Float List Printf Prng Scale Table Tinygroups
