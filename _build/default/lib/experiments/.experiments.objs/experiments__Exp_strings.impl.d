lib/experiments/exp_strings.ml: Common List Printf Prng Randstring Scale Stats Table
