lib/experiments/exp_pow.ml: Idspace Int64 List Pow Prng Scale Sim Stats Table
