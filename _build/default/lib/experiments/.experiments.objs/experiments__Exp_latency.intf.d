lib/experiments/exp_latency.mli: Prng Scale Table
