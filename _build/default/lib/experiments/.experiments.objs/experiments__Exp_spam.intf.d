lib/experiments/exp_spam.mli: Prng Scale Table
