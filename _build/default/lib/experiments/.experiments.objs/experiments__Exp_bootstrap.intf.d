lib/experiments/exp_bootstrap.mli: Prng Scale Table
