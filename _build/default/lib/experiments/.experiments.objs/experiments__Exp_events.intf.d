lib/experiments/exp_events.mli: Prng Scale Table
