lib/experiments/exp_pow.mli: Prng Scale Table
