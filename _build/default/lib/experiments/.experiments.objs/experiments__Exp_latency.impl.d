lib/experiments/exp_latency.ml: Array Common Idspace List Printf Prng Scale Sim Stats Table Tinygroups
