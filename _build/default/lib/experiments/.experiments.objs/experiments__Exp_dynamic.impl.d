lib/experiments/exp_dynamic.ml: List Printf Prng Scale Table Tinygroups
