lib/experiments/exp_static.mli: Prng Scale Table
