lib/experiments/exp_cuckoo.ml: Baseline List Printf Prng Scale Table Tinygroups
