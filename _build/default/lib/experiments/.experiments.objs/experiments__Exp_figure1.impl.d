lib/experiments/exp_figure1.ml: Adversary Array Buffer Common Idspace List Point Printf Ring String Tinygroups
