lib/experiments/exp_theory.mli: Prng Scale Table
