lib/experiments/exp_drift.ml: Printf Prng Scale Table Tinygroups
