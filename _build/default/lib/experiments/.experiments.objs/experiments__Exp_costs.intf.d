lib/experiments/exp_costs.mli: Prng Scale Table
