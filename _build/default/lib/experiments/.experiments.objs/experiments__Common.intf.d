lib/experiments/common.mli: Adversary Hashing Population Prng Tinygroups
