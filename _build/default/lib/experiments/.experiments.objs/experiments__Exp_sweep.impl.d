lib/experiments/exp_sweep.ml: Common Float Idspace List Printf Prng Scale Table Tinygroups
