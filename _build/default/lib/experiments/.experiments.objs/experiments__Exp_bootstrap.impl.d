lib/experiments/exp_bootstrap.ml: Array Common List Printf Prng Scale Table Tinygroups
