lib/experiments/exp_protocol.mli: Prng Scale Table
