lib/experiments/exp_costs.ml: Baseline Common Idspace List Prng Scale Stats Table Tinygroups
