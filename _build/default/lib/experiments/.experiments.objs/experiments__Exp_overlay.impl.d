lib/experiments/exp_overlay.ml: Adversary Array Common Hashtbl Idspace List Overlay Printf Prng Scale Table Tinygroups
