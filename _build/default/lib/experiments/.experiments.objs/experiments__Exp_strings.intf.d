lib/experiments/exp_strings.mli: Prng Scale Table
