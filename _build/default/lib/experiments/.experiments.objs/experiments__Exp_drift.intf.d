lib/experiments/exp_drift.mli: Prng Scale Table
