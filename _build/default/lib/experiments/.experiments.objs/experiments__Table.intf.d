lib/experiments/table.mli:
