lib/experiments/exp_figure1.mli: Prng
