type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: column count mismatch";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length t.columns)
      rows
  in
  let pad width s = s ^ String.make (width - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad widths row) in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("\n== " ^ t.title ^ "\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  List.iter (fun note -> Buffer.add_string buf ("   " ^ note ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 1024 in
  let line row = Buffer.add_string buf (String.concat "," (List.map csv_cell row) ^ "\n") in
  line t.columns;
  List.iter line (List.rev t.rows);
  List.iter (fun n -> Buffer.add_string buf ("# " ^ n ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let save_csv t ~dir ~slug =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (slug ^ ".csv") in
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc;
  path

let title t = t.title

let fint = string_of_int
let ffloat ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let fpct x = Printf.sprintf "%.2f%%" (100. *. x)
let fsci x = Printf.sprintf "%.2e" x
