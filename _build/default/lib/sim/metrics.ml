type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr t name = Stdlib.incr (cell t name)
let add t name k = cell t name |> fun r -> r := !r + k
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let snapshot t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  List.iter (fun (name, v) -> Format.fprintf fmt "%-24s %d@." name v) (snapshot t)

let msg_group_comm = "msg.group_comm"
let msg_routing = "msg.routing"
let msg_membership = "msg.membership"
let msg_propagation = "msg.propagation"
let pow_hash_evals = "pow.hash_evals"
