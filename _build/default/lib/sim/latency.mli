(** Per-message latency models for message-level simulations.

    The paper's motivation cites wide-area deployments where group
    size visibly costs latency ([51]: "|G| = 30 incurs significant
    latency in PlanetLab experiments"). The timed-routing experiment
    (E17) needs a latency distribution per point-to-point message;
    this module provides the usual suspects. Times are abstract
    milliseconds as integers. *)

type t

val constant : int -> t
(** Every message takes exactly this long. *)

val uniform : lo:int -> hi:int -> t
(** Uniform on the inclusive range. *)

val lognormal_like : median:int -> sigma:float -> t
(** A heavy-tailed WAN-ish model: [median * exp (sigma * z)] with [z]
    standard normal; typical internet RTT shapes at
    [median ~ 40, sigma ~ 0.6]. *)

val sample : Prng.Rng.t -> t -> int
(** One message delay; always at least 1. *)

val describe : t -> string
