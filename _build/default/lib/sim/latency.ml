type t =
  | Constant of int
  | Uniform of int * int
  | Lognormal of int * float

let constant ms =
  if ms < 1 then invalid_arg "Latency.constant: at least 1ms";
  Constant ms

let uniform ~lo ~hi =
  if lo < 1 || hi < lo then invalid_arg "Latency.uniform: need 1 <= lo <= hi";
  Uniform (lo, hi)

let lognormal_like ~median ~sigma =
  if median < 1 || sigma < 0. then invalid_arg "Latency.lognormal_like";
  Lognormal (median, sigma)

(* Box-Muller from two uniforms. *)
let std_normal rng =
  let u1 = Float.max 1e-12 (Prng.Rng.float rng) in
  let u2 = Prng.Rng.float rng in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let sample rng = function
  | Constant ms -> ms
  | Uniform (lo, hi) -> Prng.Rng.int_in rng lo hi
  | Lognormal (median, sigma) ->
      let z = std_normal rng in
      max 1 (int_of_float (float_of_int median *. exp (sigma *. z)))

let describe = function
  | Constant ms -> Printf.sprintf "constant %dms" ms
  | Uniform (lo, hi) -> Printf.sprintf "uniform [%d, %d]ms" lo hi
  | Lognormal (median, sigma) -> Printf.sprintf "lognormal-like median %dms sigma %.2f" median sigma
