(** A deterministic discrete-event engine.

    Time is a non-negative integer counter of "steps", the unit the
    paper uses for epochs ([T] steps per epoch, §III). Events
    scheduled for the same step run in scheduling order, so a run is a
    pure function of the seed. Used by the random-string propagation
    protocol (§IV-B) and the churn driver. *)

type t

val create : unit -> t

val now : t -> int
(** Current simulation step. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** [schedule t ~at f] runs [f] at step [at]; requires
    [at >= now t]. *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** [schedule_after t ~delay f] runs [f] at [now t + delay];
    [delay >= 0]. *)

val run : ?until:int -> t -> unit
(** Dispatch events in order until the queue empties, or past step
    [until] when given (events at step [until] still run). *)

val pending : t -> int
(** Events still queued. *)
