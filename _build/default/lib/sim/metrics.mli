(** Named counters for cost accounting.

    The paper's claims are cost claims — message complexity of group
    communication, secure routing and string propagation, and per-ID
    state. Components increment named counters here; experiment
    harnesses snapshot and reset them around each measured phase. *)

type t

val create : unit -> t

val incr : t -> string -> unit
val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for never-touched counters. *)

val reset : t -> unit
(** Zero every counter. *)

val snapshot : t -> (string * int) list
(** All counters, sorted by name. *)

val pp : Format.formatter -> t -> unit

(** Conventional counter names used across the libraries. *)

val msg_group_comm : string
(** Intra-group all-to-all messages (group communication, cost (i)). *)

val msg_routing : string
(** Inter-group all-to-all messages during secure routing
    (cost (ii)). *)

val msg_membership : string
(** Messages spent making and verifying group-membership and
    neighbour requests (§III-A). *)

val msg_propagation : string
(** Messages of the random-string propagation protocol
    (Lemma 12). *)

val pow_hash_evals : string
(** Hash evaluations spent on proof-of-work puzzles (§IV-A). *)
