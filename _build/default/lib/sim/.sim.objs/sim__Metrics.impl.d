lib/sim/metrics.ml: Format Hashtbl List Stdlib String
