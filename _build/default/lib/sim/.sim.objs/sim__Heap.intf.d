lib/sim/heap.mli:
