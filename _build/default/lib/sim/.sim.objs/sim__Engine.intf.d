lib/sim/engine.mli:
