lib/sim/latency.mli: Prng
