lib/sim/latency.ml: Float Printf Prng
