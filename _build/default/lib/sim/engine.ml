type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : int;
  mutable next_seq : int;
}

let create () = { queue = Heap.create (); clock = 0; next_seq = 0 }

let now t = t.clock

let schedule t ~at f =
  if at < t.clock then invalid_arg "Engine.schedule: event in the past";
  Heap.push t.queue ~time:at ~seq:t.next_seq f;
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.clock + delay) f

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some (time, _, _) -> (
        match until with
        | Some limit when time > limit ->
            continue := false;
            t.clock <- limit
        | _ -> (
            match Heap.pop t.queue with
            | Some (time, _, f) ->
                t.clock <- time;
                f ()
            | None -> assert false))
  done

let pending t = Heap.size t.queue
