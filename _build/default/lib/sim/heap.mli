(** A binary min-heap with integer-pair priorities.

    Backs the event queue of {!Engine}. Priorities are
    [(time, sequence)] pairs so that events at equal times pop in
    insertion order — deterministic replay is a hard requirement for
    reproducible experiments. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:int -> seq:int -> 'a -> unit
(** Insert with priority [(time, seq)], ordered lexicographically. *)

val pop : 'a t -> (int * int * 'a) option
(** Remove and return the minimum as [(time, seq, value)]. *)

val peek : 'a t -> (int * int * 'a) option
