(** Descriptive statistics over float samples.

    Every experiment table reports means, deviations and quantiles of
    measured quantities (failure fractions, message counts, state
    sizes); this module is their single implementation. *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** Sample standard deviation (n-1 denominator). *)
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

val summarize : float array -> summary
(** Summary of a non-empty sample. The input array is not modified. *)

val mean : float array -> float
val variance : float array -> float
(** Sample variance (n-1 denominator); 0 for singleton samples. *)

val std : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [0,1], by linear interpolation on the
    sorted sample. The input array is not modified. *)

val of_ints : int array -> float array
(** Convenience conversion. *)
