let chernoff_upper ~mu ~delta =
  if mu < 0. || delta <= 0. || delta >= 1. then invalid_arg "Bounds.chernoff_upper";
  exp (-.(delta *. delta) *. mu /. 3.)

let chernoff_lower ~mu ~delta =
  if mu < 0. || delta <= 0. || delta >= 1. then invalid_arg "Bounds.chernoff_lower";
  exp (-.(delta *. delta) *. mu /. 2.)

(* Relative entropy D(a || p) between Bernoulli(a) and Bernoulli(p). *)
let kl a p =
  let term x y = if x = 0. then 0. else x *. log (x /. y) in
  term a p +. term (1. -. a) (1. -. p)

let bad_group_probability ~group_size ~beta =
  if group_size <= 0 then invalid_arg "Bounds.bad_group_probability";
  if beta <= 0. then 0.
  else if beta >= 0.5 then 1.
  else begin
    let g = float_of_int group_size in
    exp (-.g *. kl 0.5 beta)
  end

let mcdiarmid ~ci ~t =
  let sum_sq = Array.fold_left (fun acc c -> acc +. (c *. c)) 0. ci in
  if sum_sq <= 0. then invalid_arg "Bounds.mcdiarmid: zero variation budget";
  exp (-2. *. t *. t /. sum_sq)

let binomial_tail_ge ~n ~p ~k =
  if n < 0 || k < 0 then invalid_arg "Bounds.binomial_tail_ge";
  if k > n then 0.
  else if p <= 0. then if k = 0 then 1. else 0.
  else if p >= 1. then 1.
  else begin
    (* Sum pmf terms in log space for numeric stability. *)
    let log_p = log p and log_q = log (1. -. p) in
    let log_choose =
      let lgamma_cache = Array.make (n + 2) 0. in
      for i = 2 to n + 1 do
        lgamma_cache.(i) <- lgamma_cache.(i - 1) +. log (float_of_int (i - 1))
      done;
      fun j -> lgamma_cache.(n + 1) -. lgamma_cache.(j + 1) -. lgamma_cache.(n - j + 1)
    in
    let acc = ref 0. in
    for j = k to n do
      let lp = log_choose j +. (float_of_int j *. log_p) +. (float_of_int (n - j) *. log_q) in
      acc := !acc +. exp lp
    done;
    Float.min 1. !acc
  end

let predicted_pf ~n ~k ~c =
  if n < 3 then 1.
  else begin
    let e = k -. c in
    if e <= 0. then 1. else 1. /. (log (float_of_int n) ** e)
  end
