type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
  p95 : float;
  p99 : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.variance: empty sample";
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.summarize: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let q p =
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
    end
  in
  {
    n;
    mean = mean xs;
    std = std xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    median = q 0.5;
    p95 = q 0.95;
    p99 = q 0.99;
  }

let of_ints xs = Array.map float_of_int xs
