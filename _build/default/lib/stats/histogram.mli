(** Fixed-width histograms for distribution sanity checks.

    Used to test uniformity of adversarial PoW identifiers
    (Lemma 11: the minted IDs must be u.a.r. on [0,1)) and to render
    ASCII distribution plots in the experiment reports. *)

type t

val create : ?lo:float -> ?hi:float -> bins:int -> unit -> t
(** [create ~bins ()] covers [0,1) by default; values outside
    [lo, hi) are clamped into the end bins. Requires [bins >= 1] and
    [lo < hi]. *)

val add : t -> float -> unit
val add_many : t -> float array -> unit

val count : t -> int -> int
(** Observations in bin [i]. *)

val total : t -> int
val bins : t -> int

val chi_square_uniform : t -> float
(** Chi-square statistic against the uniform distribution over the
    histogram's range; degrees of freedom is [bins - 1]. *)

val chi_square_critical_99 : dof:int -> float
(** Approximate 99th-percentile critical value of the chi-square
    distribution with [dof] degrees of freedom (Wilson–Hilferty
    approximation) — a statistic below this is consistent with
    uniformity at the 1% level. *)

val max_deviation : t -> float
(** Max over bins of [|observed/total - expected|] as a fraction;
    a Kolmogorov-style coarse distance to uniform. *)

val render : t -> width:int -> string
(** ASCII bar rendering, one line per bin. *)
