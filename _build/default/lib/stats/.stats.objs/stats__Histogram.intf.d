lib/stats/histogram.mli:
