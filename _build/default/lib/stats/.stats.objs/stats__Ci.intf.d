lib/stats/ci.mli: Format
