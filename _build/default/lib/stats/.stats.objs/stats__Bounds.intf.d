lib/stats/bounds.mli:
