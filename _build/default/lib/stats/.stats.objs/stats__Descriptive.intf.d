lib/stats/descriptive.mli:
