lib/stats/bounds.ml: Array Float
