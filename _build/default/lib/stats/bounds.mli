(** The concentration bounds of the paper (§I-C, Theorems 1 and 2),
    as executable calculators.

    Experiments compare empirical tail frequencies against these
    analytic bounds: e.g. E1 checks that the measured fraction of bad
    groups sits below the Chernoff prediction that drives Lemma 7. *)

val chernoff_upper : mu:float -> delta:float -> float
(** [chernoff_upper ~mu ~delta] bounds
    [Pr(X > (1 + delta) mu] by [exp (-delta^2 mu / 3)] for a sum of
    independent indicators with mean [mu] and [0 < delta < 1]
    (Theorem 1, upper tail). *)

val chernoff_lower : mu:float -> delta:float -> float
(** [Pr(X < (1 - delta) mu) <= exp (-delta^2 mu / 2)] (Theorem 1,
    lower tail). *)

val bad_group_probability : group_size:int -> beta:float -> float
(** Chernoff bound on the probability that a group of [group_size]
    u.a.r. members contains more than [(1 + delta) beta]-fraction bad
    IDs, with the paper's threshold at a (strict) majority: the
    probability that [Binomial(g, beta) >= g/2], bounded by
    [exp (-g * D(1/2 || beta))] via the relative-entropy Chernoff
    form (tight for this regime). *)

val mcdiarmid : ci:float array -> t:float -> float
(** [mcdiarmid ~ci ~t] is the Method of Bounded Differences tail
    [exp (-2 t^2 / sum c_i^2)] (Theorem 2) for one-sided deviation
    [t]. *)

val binomial_tail_ge : n:int -> p:float -> k:int -> float
(** Exact [Pr(Binomial(n, p) >= k)] by direct summation — used to
    cross-check the Chernoff approximations for the tiny group sizes
    the paper actually uses (where asymptotics are loose). *)

val predicted_pf : n:int -> k:float -> c:float -> float
(** The paper's target red-group rate [p_f <= 1 / log^k n] and the
    derived search-failure rate [O(1 / log^(k-c) n)] share the shape
    [1 / (ln n)^e]; [predicted_pf ~n ~k ~c] is [1 / (ln n)^(k - c)].
    Use [c = 0.] for the group bound itself. *)
