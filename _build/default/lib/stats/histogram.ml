type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable total : int;
}

let create ?(lo = 0.) ?(hi = 1.) ~bins () =
  if bins < 1 then invalid_arg "Histogram.create: bins >= 1";
  if lo >= hi then invalid_arg "Histogram.create: lo < hi required";
  { lo; hi; counts = Array.make bins 0; total = 0 }

let add t x =
  let bins = Array.length t.counts in
  let idx =
    int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
  in
  let idx = if idx < 0 then 0 else if idx >= bins then bins - 1 else idx in
  t.counts.(idx) <- t.counts.(idx) + 1;
  t.total <- t.total + 1

let add_many t xs = Array.iter (add t) xs

let count t i = t.counts.(i)
let total t = t.total
let bins t = Array.length t.counts

let chi_square_uniform t =
  let b = Array.length t.counts in
  if t.total = 0 then 0.
  else begin
    let expected = float_of_int t.total /. float_of_int b in
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. t.counts
  end

let chi_square_critical_99 ~dof =
  if dof < 1 then invalid_arg "Histogram.chi_square_critical_99";
  (* Wilson–Hilferty: chi2_q ~= dof * (1 - 2/(9 dof) + z_q sqrt(2/(9 dof)))^3,
     with z_0.99 = 2.326. *)
  let k = float_of_int dof in
  let a = 2. /. (9. *. k) in
  k *. ((1. -. a +. (2.326 *. sqrt a)) ** 3.)

let max_deviation t =
  let b = Array.length t.counts in
  if t.total = 0 then 0.
  else begin
    let expected = 1. /. float_of_int b in
    Array.fold_left
      (fun acc c ->
        let f = float_of_int c /. float_of_int t.total in
        Float.max acc (Float.abs (f -. expected)))
      0. t.counts
  end

let render t ~width =
  let b = Array.length t.counts in
  let peak = Array.fold_left max 1 t.counts in
  let buf = Buffer.create (b * (width + 16)) in
  Array.iteri
    (fun i c ->
      let lo = t.lo +. ((t.hi -. t.lo) *. float_of_int i /. float_of_int b) in
      let bar_len = c * width / peak in
      Buffer.add_string buf (Printf.sprintf "%8.4f | %s %d\n" lo (String.make bar_len '#') c))
    t.counts;
  Buffer.contents buf
