type interval = { lo : float; hi : float }

let wilson ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Ci.wilson: trials > 0 required";
  if successes < 0 || successes > trials then invalid_arg "Ci.wilson: successes out of range";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = p +. (z2 /. (2. *. n)) in
  let spread = z *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n))) in
  { lo = Float.max 0. ((centre -. spread) /. denom); hi = Float.min 1. ((centre +. spread) /. denom) }

let wilson95 ~successes ~trials = wilson ~successes ~trials ~z:1.96

let mean_ci95 xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Ci.mean_ci95: need >= 2 samples";
  let m = Descriptive.mean xs in
  let se = Descriptive.std xs /. sqrt (float_of_int n) in
  { lo = m -. (1.96 *. se); hi = m +. (1.96 *. se) }

let pp fmt { lo; hi } = Format.fprintf fmt "[%.5f, %.5f]" lo hi
