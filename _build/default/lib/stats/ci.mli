(** Confidence intervals for proportions and means.

    Robustness experiments estimate small failure probabilities (a
    handful of red groups among thousands); the Wilson interval stays
    honest near 0 where the normal approximation collapses. *)

type interval = { lo : float; hi : float }

val wilson : successes:int -> trials:int -> z:float -> interval
(** Wilson score interval for a binomial proportion; [z] is the
    normal quantile (1.96 for 95%). Requires [trials > 0] and
    [0 <= successes <= trials]. *)

val wilson95 : successes:int -> trials:int -> interval

val mean_ci95 : float array -> interval
(** Normal-approximation 95% interval for the mean of a sample of at
    least two points. *)

val pp : Format.formatter -> interval -> unit
