(** Replicated storage over the wire.

    {!Kvstore.Store} models replication analytically; this module
    executes it message by message over {!Network}: a PUT first runs
    a real member-level secure search to locate the home group, then
    sends one {!Message.Store_write} to each member (good members
    persist it, bad members discard); a GET locates the home group
    the same way, sends {!Message.Store_read}s and majority-filters
    the returned {!Message.Store_vote}s, with bad members forging the
    newest version. Latencies are sampled per message, so operations
    come back with end-to-end wall times as well as message counts.

    Member state is genuinely per member: each ID keeps its own
    name -> (version, value) table, so partial writes, stale replicas
    and forged votes are all concrete, not flags. *)

open Idspace

type t

val create :
  Prng.Rng.t ->
  Tinygroups.Group_graph.t ->
  latency:Sim.Latency.t ->
  behaviour:Secure_search.behaviour ->
  t

type op_stats = { messages : int; latency_ms : int }

type put_result =
  | Put_ok of { version : int; replicas : int; stats : op_stats }
  | Put_blocked

val put : t -> client:Point.t -> name:string -> value:string -> put_result
(** [client] must be a leader of the graph. *)

type get_result =
  | Get_ok of { value : string; version : int; stats : op_stats }
  | Get_corrupted of op_stats
  | Get_not_found of op_stats
  | Get_blocked

val get : t -> client:Point.t -> name:string -> get_result

val member_holds : t -> member:Point.t -> name:string -> (int * string) option
(** Inspect one member's table (tests). *)
