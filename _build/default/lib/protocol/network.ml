open Idspace

type t = {
  rng : Prng.Rng.t;
  latency : Sim.Latency.t;
  engine : Sim.Engine.t;
  handlers : (int64, t -> now:int -> Message.t -> unit) Hashtbl.t;
  mutable sent : int;
}

let create rng ~latency =
  { rng; latency; engine = Sim.Engine.create (); handlers = Hashtbl.create 1024; sent = 0 }

let register t id handler = Hashtbl.replace t.handlers (Point.to_u62 id) handler

let send t ~to_ message =
  t.sent <- t.sent + 1;
  let delay = Sim.Latency.sample t.rng t.latency in
  Sim.Engine.schedule_after t.engine ~delay (fun () ->
      match Hashtbl.find_opt t.handlers (Point.to_u62 to_) with
      | Some handler -> handler t ~now:(Sim.Engine.now t.engine) message
      | None -> ())

let run ?deadline t = Sim.Engine.run ?until:deadline t.engine

let now t = Sim.Engine.now t.engine
let messages_sent t = t.sent
