open Idspace

type search_request = {
  qid : int;
  key : Point.t;
  stage : Point.t;
  client : Point.t;
  sender_member : Point.t option;
  sender_group : Point.t option;
  sender_count : int;
}

type search_reply = {
  qid : int;
  responsible : Point.t;
  responder_count : int;
}

type store_write = {
  wname : string;
  wversion : int;
  wvalue : string;
}

type store_read = { rname : string }

type store_vote = {
  vname : string;
  vstate : (int * string) option;
  voter : Point.t;
}

type t =
  | Search_request of search_request
  | Search_reply of search_reply
  | Store_write of store_write
  | Store_read of store_read
  | Store_vote of store_vote

let pp fmt = function
  | Search_request r ->
      Format.fprintf fmt "req#%d key=%a stage=%a (quorum base %d)" r.qid Point.pp r.key
        Point.pp r.stage r.sender_count
  | Search_reply r ->
      Format.fprintf fmt "reply#%d responsible=%a (of %d)" r.qid Point.pp r.responsible
        r.responder_count
  | Store_write w -> Format.fprintf fmt "write %s v%d" w.wname w.wversion
  | Store_read r -> Format.fprintf fmt "read %s" r.rname
  | Store_vote v ->
      Format.fprintf fmt "vote %s from %a: %s" v.vname Point.pp v.voter
        (match v.vstate with
        | Some (ver, _) -> Printf.sprintf "v%d" ver
        | None -> "none")
