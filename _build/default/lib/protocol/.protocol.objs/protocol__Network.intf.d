lib/protocol/network.mli: Idspace Message Point Prng Sim
