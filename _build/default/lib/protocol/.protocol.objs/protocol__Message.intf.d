lib/protocol/message.mli: Format Idspace Point
