lib/protocol/secure_search.ml: Adversary Array Hashtbl Idspace Int64 List Message Network Overlay Point Population Prng Ring Tinygroups
