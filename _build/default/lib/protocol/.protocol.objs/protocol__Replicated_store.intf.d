lib/protocol/replicated_store.mli: Idspace Point Prng Secure_search Sim Tinygroups
