lib/protocol/secure_search.mli: Idspace Point Prng Sim Tinygroups
