lib/protocol/message.ml: Format Idspace Point Printf
