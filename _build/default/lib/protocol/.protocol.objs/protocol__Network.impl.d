lib/protocol/network.ml: Hashtbl Idspace Message Point Prng Sim
