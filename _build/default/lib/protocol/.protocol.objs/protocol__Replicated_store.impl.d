lib/protocol/replicated_store.ml: Adversary Array Hashing Hashtbl Idspace List Message Network Option Point Population Prng Secure_search Sim Tinygroups
