(** The transport: point-to-point delivery with sampled latency over
    the discrete-event engine.

    Deterministic given the seed; counts every message. Recipients
    are registered handlers keyed by ID. *)

open Idspace

type t

val create : Prng.Rng.t -> latency:Sim.Latency.t -> t

val register : t -> Point.t -> (t -> now:int -> Message.t -> unit) -> unit
(** Install the handler run at each delivery to this ID.
    Re-registering replaces the handler. *)

val send : t -> to_:Point.t -> Message.t -> unit
(** Enqueue a delivery after a sampled latency; silently dropped if
    the recipient never registered (departed nodes). *)

val run : ?deadline:int -> t -> unit
(** Dispatch until quiescence or past [deadline] (engine steps =
    milliseconds of the latency model). *)

val now : t -> int
val messages_sent : t -> int
