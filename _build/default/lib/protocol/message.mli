(** Wire messages of the member-level secure-search protocol.

    Everything else in the repository simulates secure routing
    analytically (count the exchanges, consult the census); this
    protocol stack actually {e runs} it: real per-member messages,
    real quorum counting, real Byzantine silence — over the
    discrete-event engine. The search protocol is the recursive
    scheme of Appendix VI operated group-to-group:

    - the client fires a {!Search_request} at every member of the
      source group;
    - each good member of a traversed group forwards the request to
      every member of the next group {e once it has heard identical
      copies from a strict majority of the previous group} (that
      quorum {e is} the majority filtering of §I);
    - the responsible group's members send {!Search_reply} straight
      back to the client, who majority-filters them. *)

open Idspace

type search_request = {
  qid : int;  (** Query identity (dedup key). *)
  key : Point.t;  (** The point being searched for. *)
  stage : Point.t;  (** Leader of the group this copy addresses. *)
  client : Point.t;  (** Where the final group sends its replies. *)
  sender_member : Point.t option;
      (** The individual forwarding member (distinct-sender counting);
          [None] when the client itself injects the query. *)
  sender_group : Point.t option;
      (** Leader of the forwarding group; [None] when the client
          itself injects the query. *)
  sender_count : int;  (** Size of the forwarding group (quorum base). *)
}

type search_reply = {
  qid : int;
  responsible : Point.t;  (** The answering group's claim. *)
  responder_count : int;  (** Size of the answering group. *)
}

type store_write = {
  wname : string;
  wversion : int;
  wvalue : string;
}

type store_read = { rname : string }

type store_vote = {
  vname : string;
  vstate : (int * string) option;  (** (version, value); [None] = not held. *)
  voter : Point.t;
}

type t =
  | Search_request of search_request
  | Search_reply of search_reply
  | Store_write of store_write
  | Store_read of store_read
  | Store_vote of store_vote

val pp : Format.formatter -> t -> unit
