lib/prng/splitmix.mli:
