lib/prng/rng.mli:
