(** xoshiro256** — the workhorse generator for all simulations.

    High-quality, 256-bit state, period 2^256 - 1. Seeded from
    {!Splitmix} so that a single [int64] seed reproduces a whole
    experiment. See Blackman and Vigna, "Scrambled linear pseudorandom
    number generators" (TOMS 2021). *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into the 256-bit
    state. Seeds producing the all-zero state are remapped. *)

val of_splitmix : Splitmix.t -> t
(** [of_splitmix sm] draws the initial state from [sm], advancing it. *)

val copy : t -> t
(** Independent generator with identical state. *)

val next : t -> int64
(** 64 fresh pseudo-random bits. *)

val jump : t -> unit
(** Advance the state by 2^128 steps; used to carve non-overlapping
    substreams out of one seed. *)
