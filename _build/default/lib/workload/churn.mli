(** Churn event streams (§III's model of joins and departures).

    The paper's dynamic model keeps [n] constant: every departure is
    paired with a join. Streams here drive the cuckoo-rule baseline
    and example applications; the epoch protocol has its own
    built-in full-turnover churn. *)

type event =
  | Swap of { departing_bad : bool; joining_bad : bool }
      (** One ID departs, one joins (the paper's size-preserving
          model). *)

type stream = int -> event
(** Event at round [t] (deterministic in the stream's seed). *)

val adversarial_rejoin : stream
(** Every event is a bad ID leaving and rejoining — the join-leave
    attack the cuckoo-rule literature studies. *)

val uniform : Prng.Rng.t -> beta:float -> stream
(** Both the departing and the joining ID are bad with probability
    [beta], independently — benign background churn. *)

val mixed : Prng.Rng.t -> beta:float -> attack_fraction:float -> stream
(** A fraction of the rounds follow the attack, the rest are benign. *)
