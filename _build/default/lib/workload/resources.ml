open Idspace

type t = {
  names : string array;
  keys : Point.t array;
  oracle : Hashing.Oracle.t;
}

let make ~system_key ~names =
  let oracle = Hashing.Oracle.make ~system_key ~label:"resource-keys" in
  let keys = Array.map (fun name -> Point.of_u62 (Hashing.Oracle.query_string oracle name)) names in
  { names; keys; oracle }

let synthetic ~system_key ~count ~prefix =
  make ~system_key ~names:(Array.init count (fun i -> prefix ^ string_of_int i))

let count t = Array.length t.names
let name t i = t.names.(i)
let key t i = t.keys.(i)

let lookup_key t name = Point.of_u62 (Hashing.Oracle.query_string t.oracle name)

type popularity = Uniform_pop | Zipf of float

let sampler rng t pop =
  let n = count t in
  if n = 0 then invalid_arg "Resources.sampler: empty universe";
  match pop with
  | Uniform_pop -> fun () -> Prng.Rng.int rng n
  | Zipf s ->
      (* Inverse-CDF sampling over precomputed cumulative weights. *)
      let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
      let cumulative = Array.make n 0. in
      let total =
        let acc = ref 0. in
        Array.iteri
          (fun i w ->
            acc := !acc +. w;
            cumulative.(i) <- !acc)
          weights;
        !acc
      in
      fun () ->
        let target = Prng.Rng.float rng *. total in
        (* Binary search for the first cumulative weight >= target. *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cumulative.(mid) < target then lo := mid + 1 else hi := mid
        done;
        !lo
