type event = Swap of { departing_bad : bool; joining_bad : bool }

type stream = int -> event

let adversarial_rejoin _t = Swap { departing_bad = true; joining_bad = true }

let uniform rng ~beta _t =
  Swap
    {
      departing_bad = Prng.Rng.bernoulli rng beta;
      joining_bad = Prng.Rng.bernoulli rng beta;
    }

let mixed rng ~beta ~attack_fraction t =
  if Prng.Rng.bernoulli rng attack_fraction then adversarial_rejoin t
  else uniform rng ~beta t
