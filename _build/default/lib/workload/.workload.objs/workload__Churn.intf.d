lib/workload/churn.mli: Prng
