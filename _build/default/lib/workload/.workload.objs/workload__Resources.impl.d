lib/workload/resources.ml: Array Hashing Idspace Point Prng
