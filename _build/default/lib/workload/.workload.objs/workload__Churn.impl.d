lib/workload/churn.ml: Prng
