lib/workload/resources.mli: Idspace Point Prng
