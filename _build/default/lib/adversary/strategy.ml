type search_behaviour = Drop | Corrupt | Misroute

type t = {
  search : search_behaviour;
  delay_strings : bool;
  spam_requests : int;
}

let default = { search = Drop; delay_strings = true; spam_requests = 0 }
let passive = { search = Drop; delay_strings = false; spam_requests = 0 }

let pp_behaviour fmt = function
  | Drop -> Format.fprintf fmt "drop"
  | Corrupt -> Format.fprintf fmt "corrupt"
  | Misroute -> Format.fprintf fmt "misroute"

let pp fmt t =
  Format.fprintf fmt "{search=%a; delay_strings=%b; spam=%d}" pp_behaviour t.search
    t.delay_strings t.spam_requests
