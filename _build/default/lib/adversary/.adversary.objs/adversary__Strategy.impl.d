lib/adversary/strategy.ml: Format
