lib/adversary/placement.mli: Format Idspace Interval Point Prng
