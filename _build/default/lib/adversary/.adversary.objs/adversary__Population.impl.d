lib/adversary/population.ml: Array Idspace List Placement Point Prng Ring Set
