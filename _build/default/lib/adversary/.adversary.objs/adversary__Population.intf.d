lib/adversary/population.mli: Idspace Placement Point Prng Ring
