lib/adversary/strategy.mli: Format
