lib/adversary/placement.ml: Format Idspace Interval List Point Prng
