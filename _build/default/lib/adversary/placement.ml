open Idspace

type t = Uniform | Cluster of Interval.t | Omit of float

let draw rng strategy ~budget =
  if budget < 0 then invalid_arg "Placement.draw: negative budget";
  let draw_distinct sample k =
    let rec grow acc remaining =
      if remaining = 0 then acc
      else begin
        let p = sample () in
        if List.exists (Point.equal p) acc then grow acc remaining
        else grow (p :: acc) (remaining - 1)
      end
    in
    grow [] k
  in
  match strategy with
  | Uniform -> draw_distinct (fun () -> Point.random rng) budget
  | Cluster arc -> draw_distinct (fun () -> Interval.sample rng arc) budget
  | Omit p ->
      if p < 0. || p > 1. then invalid_arg "Placement.draw: omit probability out of [0,1]";
      List.filter
        (fun _ -> not (Prng.Rng.bernoulli rng p))
        (draw_distinct (fun () -> Point.random rng) budget)

let pp fmt = function
  | Uniform -> Format.fprintf fmt "uniform"
  | Cluster arc -> Format.fprintf fmt "cluster%a" Interval.pp arc
  | Omit p -> Format.fprintf fmt "omit(%.2f)" p
