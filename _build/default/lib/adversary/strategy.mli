(** Behavioural knobs of the single colluding adversary.

    The robustness analysis treats any search touching a red group as
    failed (§II), so for the headline metrics only the {e existence}
    of red groups matters. Applications and cost experiments, however,
    see behaviour: a red group can silently drop a request, corrupt
    the payload, or misdirect the search to another red group; during
    string propagation the adversary can withhold small-output strings
    until the last step of a phase (§IV-B); and it can spam
    membership/neighbour requests to inflate good IDs' state
    (Lemma 10's attack). *)

type search_behaviour =
  | Drop  (** Swallow the request: search times out. *)
  | Corrupt  (** Answer with corrupted data. *)
  | Misroute  (** Forward to an adversary-chosen red group. *)

type t = {
  search : search_behaviour;
  delay_strings : bool;
      (** Release record-small random strings only at the end of
          Phase 2 of the propagation protocol. *)
  spam_requests : int;
      (** Number of bogus membership/neighbour requests issued per bad
          ID per epoch. *)
}

val default : t
(** Worst case for availability: [Drop], delayed strings, no spam. *)

val passive : t
(** A crash-like adversary: drops searches, nothing else. *)

val pp : Format.formatter -> t -> unit
