(** How the adversary positions its IDs on the ring.

    Under the full construction, proof-of-work forces adversarial IDs
    to be u.a.r. in [0,1) (Lemma 11) — that is {!Uniform}. The other
    strategies exist to demonstrate {e why} the enforcement matters:
    {!Cluster} is the attack available when a single hash function
    assigns IDs (§IV-A, "Why Use Two Hash Functions?"), and {!Omit}
    is the subset-withholding adversary of Lemma 5. *)

open Idspace

type t =
  | Uniform
      (** IDs u.a.r. on the ring — what PoW with two composed hash
          functions enforces. *)
  | Cluster of Interval.t
      (** All bad IDs placed u.a.r. {e within} one arc — the
          single-hash-function pre-image–selection attack. *)
  | Omit of float
      (** Draw u.a.r. but withhold each ID independently with the
          given probability (Lemma 5's H'): the adversary fields only
          a subset of its entitled IDs. *)

val draw : Prng.Rng.t -> t -> budget:int -> Point.t list
(** [draw rng strategy ~budget] places at most [budget] bad IDs
    ({!Omit} places fewer). Duplicates are redrawn. *)

val pp : Format.formatter -> t -> unit
