open Idspace

module Pset = Set.Make (struct
  type t = Point.t

  let compare = Point.compare
end)

type t = { ring : Ring.t; bad : Pset.t }

let make ~good ~bad =
  let bad_set = Pset.of_list bad in
  if Pset.cardinal bad_set <> List.length bad then
    invalid_arg "Population.make: duplicate bad IDs";
  List.iter
    (fun g ->
      if Pset.mem g bad_set then invalid_arg "Population.make: good/bad overlap")
    good;
  let ring = Ring.of_list (good @ bad) in
  if Ring.cardinal ring <> List.length good + List.length bad then
    invalid_arg "Population.make: duplicate good IDs";
  { ring; bad = bad_set }

let generate rng ~n ~beta ~strategy =
  if beta < 0. || beta >= 1. then invalid_arg "Population.generate: beta out of [0,1)";
  let bad_budget = int_of_float (ceil (beta *. float_of_int n)) in
  let bad = Placement.draw rng strategy ~budget:bad_budget in
  let bad_set = Pset.of_list bad in
  let rec draw_good acc k =
    if k = 0 then acc
    else begin
      let p = Point.random rng in
      if Pset.mem p bad_set || List.exists (Point.equal p) acc then draw_good acc k
      else draw_good (p :: acc) (k - 1)
    end
  in
  let good = draw_good [] (n - List.length bad) in
  make ~good ~bad

let ring t = t.ring
let n t = Ring.cardinal t.ring
let is_bad t p = Pset.mem p t.bad
let bad_count t = Pset.cardinal t.bad
let beta_actual t = float_of_int (bad_count t) /. float_of_int (max 1 (n t))

let all_ids t = Ring.to_sorted_array t.ring

let good_ids t =
  Array.of_list (Ring.fold (fun p acc -> if Pset.mem p t.bad then acc else p :: acc) t.ring [])

let bad_ids t = Array.of_list (Pset.elements t.bad)

let add_good t p =
  if Ring.mem p t.ring then invalid_arg "Population.add_good: ID already present";
  { t with ring = Ring.add p t.ring }

let add_bad t p =
  if Ring.mem p t.ring then invalid_arg "Population.add_bad: ID already present";
  { ring = Ring.add p t.ring; bad = Pset.add p t.bad }

let remove t p = { ring = Ring.remove p t.ring; bad = Pset.remove p t.bad }

let random_good rng t =
  let good = good_ids t in
  if Array.length good = 0 then invalid_arg "Population.random_good: no good IDs";
  good.(Prng.Rng.int rng (Array.length good))
