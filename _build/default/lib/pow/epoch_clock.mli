(** Epoch arithmetic (§III, §IV-A).

    Time is divided into epochs of [T] steps, indexed from 0. ID
    generation for epoch [j+1] starts at the halfway point of epoch
    [j]; an ID minted with epoch [j]'s random string is active
    through epoch [j+1] and passive (forwarding only) through epoch
    [j+2]. *)

type t

val create : epoch_steps:int -> t
val epoch_steps : t -> int

val epoch_of_step : t -> int -> int
(** Which epoch a step falls in. *)

val epoch_start : t -> int -> int
val halfway : t -> int -> int
(** First step of the generation window inside the given epoch. *)

type id_state = Active | Passive | Expired

val id_state : t -> minted_for:int -> at_epoch:int -> id_state
(** The lifecycle of an ID minted for epoch [minted_for], observed
    during epoch [at_epoch]. Before its epoch an ID is also
    [Expired] (not yet usable). *)

val lemma11_bound : beta:float -> n:int -> eps:float -> int
(** [(1 + eps) beta n]: the per-window cap on adversarial IDs
    (Lemma 11). *)

val lemma11_stockpile_bound : beta:float -> n:int -> eps:float -> int
(** [3 (1 + eps) beta n]: the cap when the adversary computes over
    the maximal 3T/2 window (§IV-A's closing note). *)
