(** The computational-step model of proof-of-work.

    The paper's adversary owns a [beta] fraction of the {e total
    computational power} (§I-C); what the analysis actually counts is
    hash evaluations per epoch. We therefore simulate computation as
    budgets of hash evaluations — burning real CPU would only slow
    the experiments without changing a single measured distribution
    (see DESIGN.md, substitutions). *)

type t

val create : evals:int -> t
(** A budget of [evals] hash evaluations. *)

val spend : t -> int -> bool
(** [spend t k] consumes [k] evaluations if available, else leaves
    the budget unchanged and returns [false]. *)

val remaining : t -> int
val spent : t -> int

val good_id_budget : epoch_steps:int -> int
(** Evaluations one good participant performs in one generation
    window: [T/2] (it starts at the epoch's halfway point, one
    evaluation per step — §IV-A). *)

val adversary_budget : beta:float -> n:int -> epoch_steps:int -> int
(** Total adversarial evaluations over one generation window: the
    adversary holds a [beta] share of total power, so
    [beta/(1-beta)] times the aggregate good budget of [n] good
    participants. *)

val adversary_stockpile_budget : beta:float -> n:int -> epoch_steps:int -> int
(** Lemma 11's worst case: computing from the halfway point of the
    previous epoch through the end of the current one —
    [3T/2] steps' worth of the adversary's power (the paper notes the
    resulting IDs may number up to [3 (1 + eps) beta n]). *)
