lib/pow/epoch_clock.mli:
