lib/pow/epoch_clock.ml:
