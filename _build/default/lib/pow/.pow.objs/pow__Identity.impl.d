lib/pow/identity.ml: Budget Hashing Idspace Int64 Interval List Point Prng Sim
