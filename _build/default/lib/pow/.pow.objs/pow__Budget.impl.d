lib/pow/budget.ml:
