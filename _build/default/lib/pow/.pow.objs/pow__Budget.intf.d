lib/pow/budget.mli:
