lib/pow/identity.mli: Budget Idspace Interval Point Prng Sim
