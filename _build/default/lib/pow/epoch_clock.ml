type t = { epoch_steps : int }

let create ~epoch_steps =
  if epoch_steps < 2 then invalid_arg "Epoch_clock.create";
  { epoch_steps }

let epoch_steps t = t.epoch_steps

let epoch_of_step t step =
  if step < 0 then invalid_arg "Epoch_clock.epoch_of_step";
  step / t.epoch_steps

let epoch_start t epoch = epoch * t.epoch_steps
let halfway t epoch = epoch_start t epoch + (t.epoch_steps / 2)

type id_state = Active | Passive | Expired

let id_state _t ~minted_for ~at_epoch =
  if at_epoch = minted_for then Active
  else if at_epoch = minted_for + 1 then Passive
  else Expired

let lemma11_bound ~beta ~n ~eps =
  int_of_float (ceil ((1. +. eps) *. beta *. float_of_int n))

let lemma11_stockpile_bound ~beta ~n ~eps =
  3 * lemma11_bound ~beta ~n ~eps
