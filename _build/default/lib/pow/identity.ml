open Idspace

type scheme = {
  f : Hashing.Oracle.t;
  g : Hashing.Oracle.t;
  tau : int64;
}

let make_scheme ~system_key ~epoch_steps =
  if epoch_steps < 2 then invalid_arg "Identity.make_scheme: epoch too short";
  let f = Hashing.Oracle.make ~system_key ~label:"f" in
  let g = Hashing.Oracle.make ~system_key ~label:"g" in
  (* Success probability per evaluation of 2/T gives an expected T/2
     evaluations per solution. *)
  let tau =
    Int64.div (Hashing.Oracle.u62_mask) (Int64.of_int (epoch_steps / 2))
  in
  { f; g; tau }

let tau scheme = scheme.tau

type credential = {
  id : Point.t;
  sigma : int64;
  rand_string : int64;
}

let attempt scheme ~sigma ~rand_string : credential option =
  let v = Hashing.Oracle.query_u62 scheme.g (Int64.logxor sigma rand_string) in
  if v <= scheme.tau then
    Some { id = Point.of_u62 (Hashing.Oracle.query_u62 scheme.f v); sigma; rand_string }
  else None

let solve rng scheme ~budget ~rand_string ~metrics =
  let rec go () =
    if not (Budget.spend budget 1) then None
    else begin
      Sim.Metrics.incr metrics Sim.Metrics.pow_hash_evals;
      let sigma = Prng.Rng.bits64 rng in
      match attempt scheme ~sigma ~rand_string with
      | Some credential -> Some credential
      | None -> go ()
    end
  in
  go ()

let solve_all rng scheme ~budget ~rand_string ~metrics =
  let rec go acc =
    match solve rng scheme ~budget ~rand_string ~metrics with
    | Some c -> go (c :: acc)
    | None -> List.rev acc
  in
  go []

let verify scheme credential ~known_strings =
  List.exists (Int64.equal credential.rand_string) known_strings
  &&
  let v =
    Hashing.Oracle.query_u62 scheme.g
      (Int64.logxor credential.sigma credential.rand_string)
  in
  v <= scheme.tau
  && Point.equal credential.id (Point.of_u62 (Hashing.Oracle.query_u62 scheme.f v))

let solve_single_hash_targeted rng scheme ~budget ~target ~metrics =
  let rec go () =
    if not (Budget.spend budget 1) then None
    else begin
      Sim.Metrics.incr metrics Sim.Metrics.pow_hash_evals;
      (* The broken scheme hashes the candidate ID directly, so the
         adversary samples candidates only inside its target arc. *)
      let x = Interval.sample rng target in
      let v = Hashing.Oracle.query_u62 scheme.g (Point.to_u62 x) in
      if v <= scheme.tau then Some x else go ()
    end
  in
  go ()
