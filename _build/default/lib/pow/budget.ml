type t = { mutable remaining : int; mutable spent : int }

let create ~evals =
  if evals < 0 then invalid_arg "Budget.create: negative budget";
  { remaining = evals; spent = 0 }

let spend t k =
  if k < 0 then invalid_arg "Budget.spend: negative amount";
  if t.remaining >= k then begin
    t.remaining <- t.remaining - k;
    t.spent <- t.spent + k;
    true
  end
  else false

let remaining t = t.remaining
let spent t = t.spent

let good_id_budget ~epoch_steps = epoch_steps / 2

let adversary_rate ~beta =
  if beta < 0. || beta >= 1. then invalid_arg "Budget.adversary_rate: beta out of [0,1)";
  beta /. (1. -. beta)

let adversary_budget ~beta ~n ~epoch_steps =
  let good_total = float_of_int n *. float_of_int (good_id_budget ~epoch_steps) in
  int_of_float (adversary_rate ~beta *. good_total)

let adversary_stockpile_budget ~beta ~n ~epoch_steps =
  let good_total = float_of_int n *. float_of_int (good_id_budget ~epoch_steps) in
  int_of_float (adversary_rate ~beta *. good_total *. 3.)
