(** Proof-of-work identifier generation and verification (§IV-A).

    To mint an ID for the next epoch, a participant holding the
    current global random string [r] draws candidate strings [sigma]
    and tests [g(sigma XOR r) <= tau]; on success its ID is
    [f(g(sigma XOR r))]. Both [f] and [g] are random oracles, so:

    - the {e work} is real: each test costs one hash evaluation
      against a {!Budget.t}, and [tau] calibrates the expected number
      of evaluations per ID;
    - the resulting ID is {e uniform} on [0,1) no matter how the
      solver chose its [sigma]s — the two-hash composition defeats
      the pre-image–selection attack that breaks the single-hash
      scheme (also implemented here, as the ablation);
    - the credential [(sigma, r)] is {e verifiable} and {e expires}
      with [r].

    The zero-knowledge wrapper the paper cites ([25]) only prevents a
    verifier from stealing [sigma]; we model verification as an
    oracle that does not leak (see DESIGN.md). *)

open Idspace

type scheme
(** The deployment's hash functions [f], [g] and threshold. *)

val make_scheme : system_key:string -> epoch_steps:int -> scheme
(** Calibrates [tau] so a good participant needs [T/2] evaluations in
    expectation per ID (§IV-A: "(1 ± eps) T/2 steps"). *)

val tau : scheme -> int64
(** The puzzle threshold on [g]'s 62-bit output. *)

type credential = {
  id : Point.t;  (** [f(g(sigma XOR r))]. *)
  sigma : int64;  (** The solver's witness. *)
  rand_string : int64;  (** The global random string [r] used. *)
}

val attempt : scheme -> sigma:int64 -> rand_string:int64 -> credential option
(** One puzzle test with a caller-chosen witness (no budget
    accounting) — the primitive adversarial strategies build on. *)

val solve :
  Prng.Rng.t ->
  scheme ->
  budget:Budget.t ->
  rand_string:int64 ->
  metrics:Sim.Metrics.t ->
  credential option
(** Draw fresh [sigma]s until the puzzle test passes or the budget
    runs dry; each test costs one evaluation (charged to [metrics]
    under {!Sim.Metrics.pow_hash_evals} too). *)

val solve_all :
  Prng.Rng.t ->
  scheme ->
  budget:Budget.t ->
  rand_string:int64 ->
  metrics:Sim.Metrics.t ->
  credential list
(** Keep solving until the budget is exhausted — the adversary's
    move: one big budget, as many IDs as it can mint (Lemma 11). *)

val verify : scheme -> credential -> known_strings:int64 list -> bool
(** Full verification: the random string is one the verifier knows
    (current — anything else has expired), the puzzle inequality
    holds, and the ID equals [f(g(sigma XOR r))]. *)

(** {2 The single-hash ablation}

    "Why Use Two Hash Functions?" (§IV-A): if any [x] with
    [g(x) <= tau] {e is} the ID, the adversary confines its search to
    [x] in a chosen interval and mints clustered IDs at full speed. *)

val solve_single_hash_targeted :
  Prng.Rng.t ->
  scheme ->
  budget:Budget.t ->
  target:Interval.t ->
  metrics:Sim.Metrics.t ->
  Point.t option
(** Find [x] in [target] with [g(x) <= tau]: a valid ID under the
    broken scheme, placed wherever the adversary wants. *)
