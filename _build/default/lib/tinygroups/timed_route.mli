(** Message-level timing of secure routing.

    The count-based {!Secure_route} answers "how many messages"; this
    module answers "how long". Each hop of a secure search is an
    all-to-all exchange, and a receiving member may only forward once
    a {e strict majority} of the previous group's members has been
    heard (that is what makes the filtering sound) — so each hop's
    latency is the time until the majority quorum lands, i.e. the
    median-order statistic of [|G_prev|] random message delays, taken
    at the slowest receiver that the next hop will in turn wait for.

    Larger groups therefore pay twice: quadratically in messages and
    measurably in quorum waiting — the wide-area observation ([51]'s
    PlanetLab runs with [|G| = 30]) that the paper uses to motivate
    shrinking groups. Experiment E17 reproduces that shape. *)

open Idspace

type timing = {
  elapsed_ms : int;  (** Arrival time of the search at its endpoint. *)
  per_hop_ms : int list;  (** Quorum-wait per traversed edge. *)
  messages : int;
  succeeded : bool;
}

val search :
  Prng.Rng.t ->
  Group_graph.t ->
  latency:Sim.Latency.t ->
  per_message_ms:int ->
  failure:Secure_route.failure_notion ->
  src:Point.t ->
  key:Point.t ->
  timing
(** Simulate one secure search at message granularity over the given
    latency model. The group path and failure semantics are exactly
    {!Secure_route.search}'s. [per_message_ms] is each
    member's serial cost to receive, verify and de-duplicate one
    incoming message — the term through which [|G|] buys latency
    pain, since every member of every hop handles [|G_prev|]
    messages. *)

val quorum_wait :
  Prng.Rng.t ->
  Sim.Latency.t ->
  ?per_message_ms:int ->
  senders:int ->
  receivers:int ->
  unit ->
  int
(** One edge's latency: each receiver processes arrivals serially at
    [per_message_ms] each and owns its quorum at the processing
    completion of its [floor(senders/2) + 1]-th message; the edge
    completes when the {e last} receiver has its quorum. Exposed for
    tests. *)
