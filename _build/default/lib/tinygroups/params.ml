type sizing = Log_log of float | Log of float | Fixed of int

type t = {
  beta : float;
  delta : float;
  sizing : sizing;
  d1 : float;
  k : float;
  epoch_steps : int;
}

(* d2 = 5.0 keeps the epoch recursion subcritical: with group size
   g = ceil(5 ln ln n), the majority-loss rate p_f satisfies
   2 |L_w| D^2 p_f << 1 for Chord's |L_w| ~ lg n and D ~ lg n at every
   practical n with margin, so per-epoch error does not compound (the
   quantitative form of Lemma 9's "d2 sufficiently large"). *)
let default =
  { beta = 0.05; delta = 0.5; sizing = Log_log 5.0; d1 = 1.0; k = 2.0; epoch_steps = 4096 }

let with_sizing t sizing = { t with sizing }

let ln_ln n = Idspace.Estimate.exact_ln_ln n

let draws_of_estimate sizing ~ln_ln_estimate =
  match sizing with
  | Log_log d2 -> max 3 (int_of_float (ceil (d2 *. ln_ln_estimate)))
  | Log c ->
      (* ln n recovered from ln ln n. *)
      max 3 (int_of_float (ceil (c *. exp ln_ln_estimate)))
  | Fixed g -> max 1 g

let member_draws t ~n = draws_of_estimate t.sizing ~ln_ln_estimate:(ln_ln n)

let member_draws_estimated t ~ln_ln_estimate = draws_of_estimate t.sizing ~ln_ln_estimate

let min_good_size t ~n =
  match t.sizing with
  | Log_log _ -> max 3 (int_of_float (floor (t.d1 *. ln_ln n)))
  | Log c -> max 3 (int_of_float (floor (c *. log (float_of_int (max 3 n)) /. 2.)))
  | Fixed g -> max 1 (g / 2)

let bad_tolerance t ~size =
  let tol = int_of_float (floor ((1. +. t.delta) *. t.beta *. float_of_int size)) in
  (* Never tolerate an outright bad majority. *)
  min tol ((size - 1) / 2)

let pp_sizing fmt = function
  | Log_log d2 -> Format.fprintf fmt "%.2f*lnln(n)" d2
  | Log c -> Format.fprintf fmt "%.2f*ln(n)" c
  | Fixed g -> Format.fprintf fmt "%d" g

let pp fmt t =
  Format.fprintf fmt "{beta=%.3f; delta=%.2f; |G|=%a; d1=%.2f; k=%.1f; T=%d}" t.beta t.delta
    pp_sizing t.sizing t.d1 t.k t.epoch_steps
