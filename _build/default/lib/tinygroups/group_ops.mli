(** Groups as reliable processors (paper §I).

    "Computation is performed by all members of a group via protocols
    for Byzantine agreement, ... each group simulates a reliable
    processor upon which jobs can be run."

    This module packages that simulation: run a binary job inside a
    group (good members compute honestly, bad members collude on the
    wrong answer, phase king reconciles), and answer external clients
    through the all-to-all majority-filtered channel. A group with a
    good majority {e and} a tolerable fault count behaves exactly like
    one reliable machine; a hijacked group is the adversary's. *)

open Idspace

type 'a reply = {
  value : 'a option;
      (** The value a (good) client extracts after majority
          filtering; [None] when no value reached a quorum. *)
  messages : int;  (** Point-to-point messages spent. *)
}

val compute :
  Prng.Rng.t ->
  Group_graph.t ->
  leader:Point.t ->
  job:bool ->
  bool reply
(** [compute rng g ~leader ~job] runs the job on the group led by
    [leader]: every good member computes the correct answer [job],
    every bad member colludes on [not job], the group runs one
    phase-king agreement, and the group's answer is read as the
    majority of member decisions. Reliable whenever the bad count is
    below the phase-king bound [g/4]; between [g/4] and [g/2] the
    protocol may or may not hold (agreement can degrade), and a
    hijacked group answers adversarially. *)

val respond :
  Group_graph.t ->
  leader:Point.t ->
  payload:'a ->
  forge:'a ->
  'a reply
(** [respond g ~leader ~payload ~forge] models the group answering
    one external client: good members send [payload], bad members
    send [forge], the client majority-filters. *)

val reliable : Group_graph.t -> Point.t -> bool
(** Whether the group currently meets the reliable-processor bound:
    good majority {e and} bad members below the agreement threshold
    ([4 t < g]). *)
