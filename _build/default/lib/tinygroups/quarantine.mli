(** Quarantining misbehaving members (paper footnote 2: "Members may
    agree to ignore an ID if it misbehaves too often, hence reducing
    spamming"; cf. the quarantine line of work [27], [43]).

    A lightweight reputation ledger a group keeps about the IDs it
    interacts with. Detected misbehaviour (a failed verification, a
    corrupted payload outvoted by the majority, a bogus request)
    increments a strike counter; once an ID crosses the threshold the
    group ignores it. Good IDs can pick up strikes only through the
    adversary's framing — which requires corrupting the group's view,
    i.e. red groups — so with honest-majority bookkeeping the
    quarantine set converges onto actual misbehavers.

    The ledger is per-group state; decisions about it are group
    decisions (in the full protocol they would run through
    agreement — here the ledger itself is the model). *)

open Idspace

type t

val create : threshold:int -> t
(** Ignore an ID after this many strikes; [threshold >= 1]. *)

val strike : t -> Point.t -> unit
(** Record one detected misbehaviour. *)

val strikes : t -> Point.t -> int

val quarantined : t -> Point.t -> bool

val quarantined_count : t -> int

val tracked : t -> int
(** IDs with at least one strike. *)

val filter_senders : t -> Point.t array -> bool array
(** [filter_senders t members] marks which members a receiver still
    listens to ([false] = quarantined): the mask to combine with
    majority filtering. *)

val simulate_spam_defence :
  Prng.Rng.t ->
  t ->
  spammers:Point.t array ->
  requests_per_spammer:int ->
  detection_rate:float ->
  int * int
(** Model a spam campaign against a group using this ledger: each
    bogus request is detected (and struck) with [detection_rate],
    and a quarantined spammer's requests are dropped for free.
    Returns [(requests_processed, requests_dropped)]: processed ones
    cost the victim verification work, dropped ones do not — the
    footnote's point. *)
