type model = {
  n : int;
  beta : float;
  group_size : int;
  search_hops : float;
  neighbors : float;
  member_bias : float;
}

let default_model ~n ~beta =
  let lg = log (float_of_int (max 4 n)) /. log 2. in
  {
    n;
    beta;
    group_size = Params.member_draws Params.default ~n;
    search_hops = (lg /. 2.) +. 2.;
    neighbors = lg +. 1.;
    member_bias = 1.15;
  }

let member_badness m = Float.min 0.999 (m.beta *. m.member_bias)

let p0 m =
  let g = m.group_size in
  Stats.Bounds.binomial_tail_ge ~n:g ~p:(member_badness m) ~k:((g / 2) + 1)

let search_failure m ~rho =
  let rho = Float.max 0. (Float.min 1. rho) in
  1. -. ((1. -. rho) ** m.search_hops)

let next_rho m ~rho =
  let qf = search_failure m ~rho in
  let per_request = qf *. qf in
  (* Neighbour links fail on a bad locate-pair or a bad verify-pair
     (Lemma 8's two cases); member draws add their own dual-failure
     term (Lemma 7). *)
  let amplification =
    (2. *. m.neighbors *. per_request) +. (float_of_int m.group_size *. per_request)
  in
  Float.min 1. (p0 m +. amplification)

let fixed_point m =
  let rec iterate rho steps =
    if steps > 10_000 then `Diverges
    else begin
      let rho' = next_rho m ~rho in
      if rho' >= 0.5 then `Diverges
      else if Float.abs (rho' -. rho) < 1e-12 then `Stable rho'
      else iterate rho' (steps + 1)
    end
  in
  iterate (p0 m) 0

let basin_edge m =
  match fixed_point m with
  | `Diverges -> None
  | `Stable stable ->
      (* The map dips below the diagonal at the stable point and
         crosses back above it at the basin edge; bisect for the
         crossing in (stable, 1/2]. *)
      let f rho = next_rho m ~rho -. rho in
      if f 0.5 < 0. then None (* attracted from everywhere we care about *)
      else begin
        let lo = ref stable and hi = ref 0.5 in
        for _ = 1 to 60 do
          let mid = (!lo +. !hi) /. 2. in
          if f mid < 0. then lo := mid else hi := mid
        done;
        Some ((!lo +. !hi) /. 2.)
      end

let critical_beta m =
  let stable_at beta =
    match fixed_point { m with beta } with `Stable _ -> true | `Diverges -> false
  in
  let lo = ref 0. and hi = ref 0.5 in
  if not (stable_at 0.) then 0.
  else begin
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2. in
      if stable_at mid then lo := mid else hi := mid
    done;
    Float.round (!lo *. 1000.) /. 1000.
  end

let minimal_group_size m =
  let rec search g =
    if g > 4 * m.group_size + 64 then g
    else
      match fixed_point { m with group_size = g } with
      | `Stable _ -> g
      | `Diverges -> search (g + 1)
  in
  search 3
