lib/tinygroups/group.ml: Adversary Array Format Idspace List Params Point Population
