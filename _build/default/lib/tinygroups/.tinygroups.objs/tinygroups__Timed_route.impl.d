lib/tinygroups/timed_route.ml: Array Group Group_graph List Secure_route Sim
