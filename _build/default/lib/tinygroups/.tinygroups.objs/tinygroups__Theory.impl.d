lib/tinygroups/theory.ml: Float Params Stats
