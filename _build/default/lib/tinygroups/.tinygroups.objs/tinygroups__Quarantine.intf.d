lib/tinygroups/quarantine.mli: Idspace Point Prng
