lib/tinygroups/group_graph.ml: Adversary Array Estimate Group Hashing Hashtbl Idspace List Option Overlay Params Point Population Prng Ring
