lib/tinygroups/epoch.ml: Adversary Array Estimate Float Group Group_graph Hashing Idspace List Logs Membership Overlay Params Placement Point Population Prng Ring Secure_route Sim
