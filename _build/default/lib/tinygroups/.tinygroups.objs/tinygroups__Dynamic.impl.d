lib/tinygroups/dynamic.ml: Adversary Array Estimate Group Group_graph Hashing Hashtbl Idspace Int64 List Logs Membership Overlay Params Point Population Prng Ring Sim
