lib/tinygroups/epoch.mli: Adversary Group_graph Idspace Membership Overlay Params Placement Prng Secure_route Sim
