lib/tinygroups/timed_route.mli: Group_graph Idspace Point Prng Secure_route Sim
