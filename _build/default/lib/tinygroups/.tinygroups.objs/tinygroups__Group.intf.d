lib/tinygroups/group.mli: Adversary Format Idspace Params Point Population
