lib/tinygroups/membership.ml: Adversary Array Group Group_graph Idspace Lazy List Option Point Population Prng Ring Secure_route Set Sim
