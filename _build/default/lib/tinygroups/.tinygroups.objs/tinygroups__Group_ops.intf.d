lib/tinygroups/group_ops.mli: Group_graph Idspace Point Prng
