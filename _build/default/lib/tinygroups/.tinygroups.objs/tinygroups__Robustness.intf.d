lib/tinygroups/robustness.mli: Group_graph Prng Secure_route Stats
