lib/tinygroups/secure_route.mli: Group_graph Idspace Point Stdlib
