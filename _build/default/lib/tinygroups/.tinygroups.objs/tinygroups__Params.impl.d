lib/tinygroups/params.ml: Format Idspace
