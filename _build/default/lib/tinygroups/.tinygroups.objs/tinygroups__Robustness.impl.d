lib/tinygroups/robustness.ml: Adversary Array Group Group_graph Hashtbl Idspace List Option Overlay Point Population Prng Ring Secure_route Stats
