lib/tinygroups/group_ops.ml: Agreement Array Group Group_graph
