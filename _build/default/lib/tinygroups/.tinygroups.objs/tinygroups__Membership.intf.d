lib/tinygroups/membership.mli: Group_graph Idspace Lazy Point Prng Secure_route Sim
