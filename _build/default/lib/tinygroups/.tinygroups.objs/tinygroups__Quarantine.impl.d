lib/tinygroups/quarantine.ml: Array Hashtbl Idspace Option Point Prng
