lib/tinygroups/dynamic.mli: Group_graph Hashing Idspace Membership Point Prng Sim
