lib/tinygroups/params.mli: Format
