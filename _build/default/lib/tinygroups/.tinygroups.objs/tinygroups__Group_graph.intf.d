lib/tinygroups/group_graph.mli: Adversary Group Hashing Hashtbl Idspace Overlay Params Point Population Prng
