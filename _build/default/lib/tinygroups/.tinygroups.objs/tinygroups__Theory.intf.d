lib/tinygroups/theory.mli:
