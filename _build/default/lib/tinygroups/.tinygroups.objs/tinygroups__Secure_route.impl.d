lib/tinygroups/secure_route.ml: Group Group_graph Idspace List Overlay Point Stdlib
