type 'a reply = {
  value : 'a option;
  messages : int;
}

let member_flags grp =
  Array.init (Group.size grp) (fun i -> Group.member_is_bad grp i)

let compute rng g ~leader ~job =
  let grp = Group_graph.group_of g leader in
  let byzantine = member_flags grp in
  let inputs = Array.map (fun bad -> if bad then not job else job) byzantine in
  let o =
    Agreement.Phase_king.run rng ~inputs ~byzantine
      ~behaviour:(Agreement.Phase_king.Collude_against job)
  in
  (* The group's externally visible answer: majority over member
     outputs, bad members reporting the attack value. *)
  let ones = ref 0 and total = Array.length inputs in
  Array.iteri
    (fun i d ->
      match d with
      | Some v when not byzantine.(i) -> if v then incr ones
      | Some _ | None -> if not job then incr ones)
    o.Agreement.Phase_king.decisions;
  let answer = 2 * !ones > total in
  { value = Some answer; messages = o.Agreement.Phase_king.messages }

let respond g ~leader ~payload ~forge =
  let grp = Group_graph.group_of g leader in
  let sender_good = Array.map not (member_flags grp) in
  let r =
    Agreement.Broadcast.send ~sender_good ~receiver_count:1 ~value:payload
      ~forge:(fun ~recipient:_ -> Some forge)
  in
  { value = r.Agreement.Broadcast.delivered.(0); messages = r.Agreement.Broadcast.messages }

let reliable g leader =
  let grp = Group_graph.group_of g leader in
  Group.has_good_majority grp
  && Agreement.Phase_king.tolerates ~g:(Group.size grp) ~t:grp.Group.bad_members
  && not (Group_graph.is_confused g leader)
