type timing = {
  elapsed_ms : int;
  per_hop_ms : int list;
  messages : int;
  succeeded : bool;
}

let quorum_wait rng latency ?(per_message_ms = 2) ~senders ~receivers () =
  if senders < 1 || receivers < 1 then invalid_arg "Timed_route.quorum_wait";
  if per_message_ms < 0 then invalid_arg "Timed_route.quorum_wait: negative cost";
  let quorum = (senders / 2) + 1 in
  let worst = ref 0 in
  for _ = 1 to receivers do
    let delays = Array.init senders (fun _ -> Sim.Latency.sample rng latency) in
    Array.sort compare delays;
    (* Serial processing: message i finishes at
       max(arrival_i, previous finish) + cost. *)
    let finish = ref 0 in
    for i = 0 to quorum - 1 do
      finish := max delays.(i) !finish + per_message_ms
    done;
    if !finish > !worst then worst := !finish
  done;
  !worst

let search rng g ~latency ~per_message_ms ~failure ~src ~key =
  let o = Secure_route.search g ~failure ~src ~key in
  let sizes =
    List.map
      (fun w -> Group.size (Group_graph.group_of g w))
      o.Secure_route.group_path
  in
  let rec hops acc = function
    | a :: (b :: _ as rest) ->
        let wait = quorum_wait rng latency ~per_message_ms ~senders:a ~receivers:b () in
        hops (wait :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  let per_hop_ms = hops [] sizes in
  {
    elapsed_ms = List.fold_left ( + ) 0 per_hop_ms;
    per_hop_ms;
    messages = o.Secure_route.messages;
    succeeded = Secure_route.succeeded o;
  }
