(** Secure search over a group graph (paper §II).

    A search for a key follows the path its leader would take in the
    input graph [H]; at every hop the whole current group forwards to
    the whole next group (all-to-all + majority filtering, message
    cost [|G_a| * |G_b|] per edge). The search's {e search path}
    terminates at the first red group: past that point the adversary
    controls the outcome, so the search has failed (§II-A).

    Two failure notions are supported:
    - [`Conservative] — any non-good or confused group on the path
      kills the search: the notion the analysis (Lemmas 1–4) uses.
    - [`Majority] — only groups without a good majority (or confused)
      kill it: the physical notion; weak groups still filter
      correctly today. *)

open Idspace

type failure_notion = [ `Conservative | `Majority ]

type outcome = {
  result : (Point.t, Point.t) Stdlib.result;
      (** [Ok responsible] on success; [Error leader] names the first
          red group on the path. *)
  group_path : Point.t list;
      (** Leaders traversed, up to and including the success endpoint
          or the first red group. *)
  messages : int;
      (** All-to-all messages spent along the traversed prefix. *)
}

val search :
  Group_graph.t ->
  failure:failure_notion ->
  src:Point.t ->
  key:Point.t ->
  outcome
(** [search g ~failure ~src ~key] routes from the group led by [src]
    toward [suc key]. [src] must be a leader (i.e. an ID of the
    population). Recursive forwarding: each group hands the request
    to the next (Appendix VI), costing [|G_a| * |G_b|] per edge. *)

val search_iterative :
  Group_graph.t ->
  failure:failure_notion ->
  src:Point.t ->
  key:Point.t ->
  outcome
(** The iterative variant of Appendix VI: the initiating group
    contacts every hop group directly and is told how to make partial
    progress, so each hop costs a round trip —
    [2 * |G_src| * |G_hop|] messages. Same path, same failure
    semantics, different cost profile (compared in experiment E15). *)

val succeeded : outcome -> bool

val group_comm_cost : Group_graph.t -> Point.t -> int
(** Message cost of one intra-group all-to-all operation of the group
    led by the given point: [|G|^2] (cost (i) of §I). *)

val expected_route_cost : Group_graph.t -> hops:int -> float
(** [hops * mean(|G|)^2]: the paper's [O(D |G|^2)] with measured
    constants. *)
