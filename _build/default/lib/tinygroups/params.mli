(** Tunable constants of the construction (paper §I-C, §III).

    The paper's guarantees are parameterised by: the adversary's
    computational share [beta]; the slack [delta] on the bad fraction a
    good group may contain; the group-size coefficients [d1 <= d2]
    (a good group has between [d1 ln ln n] and [d2 ln ln n] members);
    and the target red-group exponent [k] ([p_f <= 1 / log^k n]).

    The sizing rule generalises the construction so the very same code
    runs the paper's [Θ(log log n)] groups, the classical
    [Θ(log n)] baseline, and the fixed-size sweeps of the
    "can we do better?" experiment (§I-D). *)

type sizing =
  | Log_log of float
      (** [Log_log d2]: draw [ceil (d2 * ln ln n)] members — the
          paper's construction. *)
  | Log of float
      (** [Log c]: draw [ceil (c * ln n)] members — the classical
          baseline group size. *)
  | Fixed of int  (** Exactly this many member draws. *)

type t = {
  beta : float;  (** Adversary's share of computational power. *)
  delta : float;
      (** Slack: a group stays good while its bad fraction is at most
          [(1 + delta) * beta]. *)
  sizing : sizing;
  d1 : float;
      (** Lower size coefficient: a group smaller than
          [d1 * ln ln n] after deduplication is not good. Only
          meaningful under {!Log_log}. *)
  k : float;  (** Target exponent of the red-group rate. *)
  epoch_steps : int;  (** [T], steps per epoch (§III). *)
}

val default : t
(** [beta = 0.05], [delta = 0.5], [Log_log 2.5] with [d1 = 1.0],
    [k = 2.0], [T = 4096]. *)

val with_sizing : t -> sizing -> t

val member_draws : t -> n:int -> int
(** Number of member draws a leader makes for a system-size estimate
    [n]; at least 3 (a majority needs three members). *)

val member_draws_estimated : t -> ln_ln_estimate:float -> int
(** Same, from a decentralised [ln ln n] estimate
    ({!Idspace.Estimate}). *)

val min_good_size : t -> n:int -> int
(** Smallest post-deduplication size a good group may have. *)

val bad_tolerance : t -> size:int -> int
(** Maximum number of bad members a good group of [size] members may
    contain: [floor ((1 + delta) * beta * size)]. *)

val pp : Format.formatter -> t -> unit
