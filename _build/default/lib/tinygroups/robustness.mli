(** Measuring ε-robustness (paper §I-A, Theorem 3).

    A construction is ε-robust when at least [(1 - eps) n] groups are
    good and can securely route to each other. These estimators
    sample the quantities the theorem bounds:

    - the red-group fraction (vs the target [1 / log^k n]),
    - the success probability of a search from a random group for a
      random key (Lemma 4: [1 - O(1 / log^(k-c) n)]),
    - the fraction of IDs that can reach almost all resources
      (Theorem 3's second bullet),
    - the survival of good majorities under intra-epoch departures
      (the [eps' = 1 - 2 (1 + delta) beta] margin of §III), and
    - the per-ID state cost (Lemma 10, Corollary 1). *)


type search_report = {
  samples : int;
  successes : int;
  success_rate : float;
  ci : Stats.Ci.interval;  (** Wilson 95% interval on the rate. *)
  mean_messages : float;  (** Mean all-to-all messages per search. *)
  mean_group_hops : float;  (** Mean groups traversed per search. *)
}

val search_success :
  Prng.Rng.t ->
  Group_graph.t ->
  failure:Secure_route.failure_notion ->
  samples:int ->
  search_report
(** Sample searches from uniform random {e good}-led groups to
    uniform random keys. *)

type id_coverage = {
  ids_sampled : int;
  keys_per_id : int;
  threshold : float;
  covered_ids : int;
      (** IDs whose per-key success rate is at least
          [1 - threshold]. *)
  covered_fraction : float;
  per_id_rates : float array;
}

val id_coverage :
  Prng.Rng.t ->
  Group_graph.t ->
  failure:Secure_route.failure_notion ->
  ids:int ->
  keys:int ->
  threshold:float ->
  id_coverage
(** Theorem 3, second bullet: for [ids] random good IDs, try [keys]
    random keys each and check which IDs cover at least a
    [1 - threshold] fraction. *)

type departure_report = {
  groups : int;
  survived : int;  (** Groups retaining a strict good majority. *)
  survival_rate : float;
}

val departures_survival :
  Prng.Rng.t -> Group_graph.t -> fraction:float -> departure_report
(** Remove a uniform [fraction] of the {e good} members of every
    currently-good group and count survivors. The paper's churn
    model allows [fraction <= eps'/2] per epoch and claims survival;
    pushing the fraction past the margin shows the cliff. *)

type state_report = {
  per_id_links : Stats.Descriptive.summary;
      (** Per good ID: links maintained as a member of groups —
          intra-group links plus all-to-all links to the groups
          neighbouring each group it belongs to. *)
  per_id_memberships : Stats.Descriptive.summary;
      (** Number of groups each good ID belongs to. *)
}

val state_costs : Group_graph.t -> state_report
(** Full audit of Lemma 10's state quantities over all good IDs. *)
