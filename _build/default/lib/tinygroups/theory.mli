(** The paper's analysis as executable closed forms.

    Lemmas 4, 7, 8 and 9 combine into a one-dimensional recursion for
    the red-group fraction across epochs: with [rho] the current red
    fraction, a search fails with probability [q_f ~ 1 - (1-rho)^D],
    a member solicitation or neighbour link goes wrong with
    probability [~ q_f^2] (dual searches), and summing over the
    [|L_w|] neighbours and the member draws gives the next epoch's
    red fraction

      [rho' = p_0 + A q_f^2],   [A ~ 2 |L_w| + g],

    where [p_0] is the per-epoch floor (groups drawing a bad
    majority, Lemma 7's Chernoff term). The construction is stable
    exactly when this map has an attracting fixed point near [p_0] —
    the quantitative content of "set d2 sufficiently large" (Lemma 9)
    and of §I-D's intuition bound. This module evaluates the map, its
    fixed points and the critical adversary share, so experiments can
    place measured collapse thresholds next to predicted ones
    (experiment E20). *)

type model = {
  n : int;
  beta : float;
  group_size : int;  (** Realised group size [g]. *)
  search_hops : float;  (** [D]: groups traversed per search. *)
  neighbors : float;  (** [|L_w|]: neighbour links per group. *)
  member_bias : float;
      (** Load-imbalance premium on per-member badness (P2's
          [1 + delta'']; ~1.15 measured for Chord-scale rings). *)
}

val default_model : n:int -> beta:float -> model
(** Chord-based defaults: [g = d2 lnln n] draws, [D ~ lg n / 2 + 2],
    [|L_w| ~ lg n + 1], bias 1.15. *)

val p0 : model -> float
(** The per-epoch floor: probability a fresh group draws a bad
    majority (exact binomial tail at the effective member badness). *)

val search_failure : model -> rho:float -> float
(** [q_f] at red fraction [rho]: [1 - (1 - rho)^D]. *)

val next_rho : model -> rho:float -> float
(** One epoch of the recursion. *)

val fixed_point : model -> [ `Stable of float | `Diverges ]
(** Iterate from [p0]; [`Stable rho*] if the map settles below 1/2
    within 10^4 iterations, [`Diverges] otherwise. *)

val basin_edge : model -> float option
(** The unstable fixed point (edge of the basin of attraction), by
    bisection on [rho |-> next_rho rho - rho] above the stable point;
    [None] when the map diverges from [p0] already. *)

val critical_beta : model -> float
(** The largest [beta] (to 0.001) at which {!fixed_point} is stable,
    holding the rest of the model fixed — the predicted collapse
    threshold measured by E20. *)

val minimal_group_size : model -> int
(** The smallest [g] at which the map is stable at this model's
    [beta] — the executable form of §I-D's "can we do better?". *)
