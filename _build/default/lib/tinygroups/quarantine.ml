open Idspace

type t = {
  threshold : int;
  ledger : (int64, int) Hashtbl.t;
}

let create ~threshold =
  if threshold < 1 then invalid_arg "Quarantine.create: threshold >= 1";
  { threshold; ledger = Hashtbl.create 64 }

let key p = Point.to_u62 p

let strikes t p = Option.value ~default:0 (Hashtbl.find_opt t.ledger (key p))

let strike t p = Hashtbl.replace t.ledger (key p) (strikes t p + 1)

let quarantined t p = strikes t p >= t.threshold

let quarantined_count t =
  Hashtbl.fold (fun _ s acc -> if s >= t.threshold then acc + 1 else acc) t.ledger 0

let tracked t = Hashtbl.length t.ledger

let filter_senders t members = Array.map (fun m -> not (quarantined t m)) members

let simulate_spam_defence rng t ~spammers ~requests_per_spammer ~detection_rate =
  if detection_rate < 0. || detection_rate > 1. then
    invalid_arg "Quarantine.simulate_spam_defence: detection rate out of [0,1]";
  let processed = ref 0 and dropped = ref 0 in
  for _ = 1 to requests_per_spammer do
    Array.iter
      (fun s ->
        if quarantined t s then incr dropped
        else begin
          incr processed;
          if Prng.Rng.bernoulli rng detection_rate then strike t s
        end)
      spammers
  done;
  (!processed, !dropped)
