open Idspace
open Adversary

type report = {
  samples : int;
  successes : int;
  success_rate : float;
  predicted : float;
  mean_path_len : float;
}

let search_success rng pop overlay ~samples =
  if samples <= 0 then invalid_arg "Flat.search_success";
  let good = Population.good_ids pop in
  if Array.length good = 0 then invalid_arg "Flat.search_success: no good IDs";
  let successes = ref 0 and hops = ref 0 in
  for _ = 1 to samples do
    let src = good.(Prng.Rng.int rng (Array.length good)) in
    let key = Point.random rng in
    let path = overlay.Overlay.Overlay_intf.route ~src ~key in
    hops := !hops + List.length path;
    if List.for_all (fun id -> not (Population.is_bad pop id)) path then incr successes
  done;
  let mean_path_len = float_of_int !hops /. float_of_int samples in
  {
    samples;
    successes = !successes;
    success_rate = float_of_int !successes /. float_of_int samples;
    predicted = (1. -. Population.beta_actual pop) ** mean_path_len;
    mean_path_len;
  }
