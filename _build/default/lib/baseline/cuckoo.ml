type rule = Cuckoo | Commensal of int

type config = {
  n : int;
  beta : float;
  group_size : int;
  k : float;
  rule : rule;
  threshold : float;
  benign_churn : float;
}

let default_config ~n ~beta ~group_size =
  { n; beta; group_size; k = 4.; rule = Cuckoo; threshold = 0.5; benign_churn = 0. }

type outcome = {
  rounds_survived : int;
  compromised : bool;
  max_bad_fraction : float;
}

(* Mutable world: node positions in [0,1) floats (precision is ample
   for region bookkeeping), per-quorum-region good/bad counts. *)
type world = {
  cfg : config;
  pos : float array;  (* position of node i *)
  bad : bool array;
  regions : int;  (* quorum regions *)
  good_count : int array;
  bad_count : int array;
  region_members : (int, unit) Hashtbl.t array;  (* node ids per region *)
}

let region_of w x =
  let r = int_of_float (x *. float_of_int w.regions) in
  if r >= w.regions then w.regions - 1 else r

let place w i x =
  w.pos.(i) <- x;
  let r = region_of w x in
  Hashtbl.replace w.region_members.(r) i ();
  if w.bad.(i) then w.bad_count.(r) <- w.bad_count.(r) + 1
  else w.good_count.(r) <- w.good_count.(r) + 1

let remove w i =
  let r = region_of w w.pos.(i) in
  Hashtbl.remove w.region_members.(r) i;
  if w.bad.(i) then w.bad_count.(r) <- w.bad_count.(r) - 1
  else w.good_count.(r) <- w.good_count.(r) - 1

let make_world rng cfg =
  if cfg.n < cfg.group_size || cfg.group_size < 1 then invalid_arg "Cuckoo.make_world";
  let regions = max 1 (cfg.n / cfg.group_size) in
  let bad_total = int_of_float (ceil (cfg.beta *. float_of_int cfg.n)) in
  let w =
    {
      cfg;
      pos = Array.make cfg.n 0.;
      bad = Array.init cfg.n (fun i -> i < bad_total);
      regions;
      good_count = Array.make regions 0;
      bad_count = Array.make regions 0;
      region_members = Array.init regions (fun _ -> Hashtbl.create 8);
    }
  in
  for i = 0 to cfg.n - 1 do
    place w i (Prng.Rng.float rng)
  done;
  w

let bad_fraction w r =
  let total = w.good_count.(r) + w.bad_count.(r) in
  if total = 0 then 0. else float_of_int w.bad_count.(r) /. float_of_int total

(* Nodes inside the k-region (of fractional width k/n) containing x.
   k-regions are aligned, per Awerbuch–Scheideler. *)
let k_region_nodes w x =
  let k_regions = max 1 (int_of_float (float_of_int w.cfg.n /. w.cfg.k)) in
  let idx = min (k_regions - 1) (int_of_float (x *. float_of_int k_regions)) in
  let lo = float_of_int idx /. float_of_int k_regions in
  let hi = float_of_int (idx + 1) /. float_of_int k_regions in
  (* Scan only the quorum regions overlapping [lo, hi). *)
  let r_lo = min (w.regions - 1) (int_of_float (lo *. float_of_int w.regions)) in
  let r_hi = min (w.regions - 1) (int_of_float (hi *. float_of_int w.regions)) in
  let nodes = ref [] in
  for r = r_lo to r_hi do
    Hashtbl.iter
      (fun i () -> if w.pos.(i) >= lo && w.pos.(i) < hi then nodes := i :: !nodes)
      w.region_members.(r)
  done;
  !nodes

let rejoin rng w i =
  remove w i;
  let x = Prng.Rng.float rng in
  (match w.cfg.rule with
  | Cuckoo ->
      (* Every inhabitant of x's k-region is cuckooed to a fresh
         uniform position (no recursive eviction). *)
      let evicted = k_region_nodes w x in
      List.iter
        (fun j ->
          remove w j;
          place w j (Prng.Rng.float rng))
        evicted
  | Commensal count ->
      let r = region_of w x in
      let members = Array.of_seq (Hashtbl.to_seq_keys w.region_members.(r)) in
      Prng.Rng.shuffle rng members;
      let evict = min count (Array.length members) in
      for c = 0 to evict - 1 do
        let j = members.(c) in
        remove w j;
        place w j (Prng.Rng.float rng)
      done);
  place w i x

let simulate rng cfg ~max_rounds =
  let w = make_world rng cfg in
  let bad_nodes =
    Array.of_list
      (List.filter (fun i -> w.bad.(i)) (List.init cfg.n (fun i -> i)))
  in
  let max_frac = ref 0. in
  let check_all () =
    let worst = ref 0. in
    for r = 0 to w.regions - 1 do
      let f = bad_fraction w r in
      if f > !worst then worst := f
    done;
    !worst
  in
  max_frac := check_all ();
  let rounds = ref 0 in
  let compromised = ref (!max_frac >= cfg.threshold && Array.length bad_nodes > 0) in
  let good_nodes =
    Array.of_list (List.filter (fun i -> not w.bad.(i)) (List.init cfg.n (fun i -> i)))
  in
  while (not !compromised) && !rounds < max_rounds && Array.length bad_nodes > 0 do
    incr rounds;
    (* Join-leave attack: one adversarial node departs and rejoins. *)
    let i = bad_nodes.(Prng.Rng.int rng (Array.length bad_nodes)) in
    rejoin rng w i;
    (* Optional benign background churn. *)
    if
      cfg.benign_churn > 0.
      && Array.length good_nodes > 0
      && Prng.Rng.bernoulli rng cfg.benign_churn
    then rejoin rng w good_nodes.(Prng.Rng.int rng (Array.length good_nodes));
    (* Only regions touched this round can newly exceed the
       threshold, but a full scan is cheap relative to eviction and
       keeps the bookkeeping honest. *)
    let worst = check_all () in
    if worst > !max_frac then max_frac := worst;
    if worst >= cfg.threshold then compromised := true
  done;
  { rounds_survived = !rounds; compromised = !compromised; max_bad_fraction = !max_frac }

let min_surviving_group_size rng ~n ~beta ~rounds ~candidates =
  let rec try_sizes = function
    | [] -> None
    | g :: rest ->
        let cfg = default_config ~n ~beta ~group_size:g in
        let o = simulate (Prng.Rng.split rng) cfg ~max_rounds:rounds in
        if o.compromised then try_sizes rest else Some g
  in
  try_sizes (List.sort compare candidates)
