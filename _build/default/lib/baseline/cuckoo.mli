(** The cuckoo rule (Awerbuch–Scheideler [8]–[10]) and the commensal
    variant, as simulated by Sen and Freedman [47].

    This is the state of the art the paper positions itself against:
    groups must be {e fairly large} ([|G| = 64] at [n = 8192] for
    [beta ~ 0.002] to survive 10^5 join/leave events). Reproducing
    that finding (experiment E11) motivates the whole tiny-groups
    agenda: even the best [O(log n)]-style constructions need group
    sizes far above [ln ln n] under adaptive join-leave attack.

    Model: [n] nodes on the unit ring, a [beta] fraction adversarial.
    The ring is partitioned into aligned {e quorum regions} of
    expected occupancy [group_size]. On a join at a u.a.r. point
    [x], the {e cuckoo rule} evicts every node of the (smaller)
    [k]-region containing [x] to fresh u.a.r. positions; the
    {e commensal} variant evicts only [j] random nodes of [x]'s
    quorum region. The adversary plays the join-leave attack:
    each round it departs one of its nodes and rejoins. A region is
    {e compromised} when its bad fraction reaches [threshold]. *)

type rule =
  | Cuckoo
      (** Evict the whole k-region of the join point. *)
  | Commensal of int
      (** Evict this many random nodes of the joined quorum region. *)

type config = {
  n : int;
  beta : float;
  group_size : int;  (** Expected nodes per quorum region. *)
  k : float;  (** Expected occupancy of the eviction k-region. *)
  rule : rule;
  threshold : float;  (** Bad fraction that compromises a region. *)
  benign_churn : float;
      (** Probability that each attack round is accompanied by a
          {e good} node also leaving and rejoining — background churn
          on top of the attack. *)
}

val default_config : n:int -> beta:float -> group_size:int -> config
(** [k = 4.], [Cuckoo], majority threshold (0.5), no benign churn. *)

type outcome = {
  rounds_survived : int;
  compromised : bool;
  max_bad_fraction : float;
      (** Largest per-region bad fraction ever observed. *)
}

val simulate : Prng.Rng.t -> config -> max_rounds:int -> outcome
(** Run the join-leave attack for up to [max_rounds] rejoins or until
    some quorum region is compromised. *)

val min_surviving_group_size :
  Prng.Rng.t -> n:int -> beta:float -> rounds:int -> candidates:int list -> int option
(** The smallest candidate group size that survives [rounds]
    join-leave events (one trial each); [None] if none do. *)
