lib/baseline/flat.mli: Adversary Overlay Population Prng
