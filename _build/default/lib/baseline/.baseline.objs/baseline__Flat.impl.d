lib/baseline/flat.ml: Adversary Array Idspace List Overlay Point Population Prng
