lib/baseline/cuckoo.mli: Prng
