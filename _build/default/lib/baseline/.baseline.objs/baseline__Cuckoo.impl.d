lib/baseline/cuckoo.ml: Array Hashtbl List Prng
