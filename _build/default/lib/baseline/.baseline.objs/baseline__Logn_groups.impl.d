lib/baseline/logn_groups.ml: Tinygroups
