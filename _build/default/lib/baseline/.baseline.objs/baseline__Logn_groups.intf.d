lib/baseline/logn_groups.mli: Adversary Hashing Overlay Population Tinygroups
