(** The no-groups degenerate baseline ("groups of a single ID",
    paper §I-A).

    Routing runs over the raw input graph among individual IDs; a
    search fails as soon as its path touches a single bad ID, so the
    success rate collapses like [(1 - beta)^D]. It trivially yields
    [(1 - beta) n] reliable processors but no secure routing between
    them — the paper's argument for why ε-robustness is not free. *)

open Adversary

type report = {
  samples : int;
  successes : int;
  success_rate : float;
  predicted : float;  (** [(1 - beta)^mean_path_len]. *)
  mean_path_len : float;
}

val search_success :
  Prng.Rng.t ->
  Population.t ->
  Overlay.Overlay_intf.t ->
  samples:int ->
  report
(** Sample searches between random good IDs and random keys over the
    raw overlay; a path through any bad ID fails. *)
