(** The classical [Theta(log n)]-group baseline.

    Every prior group-based construction the paper cites ([7]–[10],
    [18], [21], ...) uses groups of [c ln n] members to get a good
    majority in {e all} groups w.h.p. This baseline runs the very
    same group-graph machinery with [Log c] sizing, so cost
    comparisons (Corollary 1 / experiment E3) differ in exactly one
    variable: the group size. *)

open Adversary

val build :
  ?c:float ->
  params:Tinygroups.Params.t ->
  population:Population.t ->
  overlay:Overlay.Overlay_intf.t ->
  member_oracle:Hashing.Oracle.t ->
  unit ->
  Tinygroups.Group_graph.t
(** [build ~c ...] is {!Tinygroups.Group_graph.build_direct} with
    sizing [Log c] (default [c = 2.0], the scale at which the
    all-groups-good guarantee holds at the experiment sizes). *)

val group_size : ?c:float -> n:int -> unit -> int
(** The member-draw count this baseline uses at system size [n]. *)
