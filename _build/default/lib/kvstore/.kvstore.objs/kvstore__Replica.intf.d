lib/kvstore/replica.mli: Idspace Point Prng
