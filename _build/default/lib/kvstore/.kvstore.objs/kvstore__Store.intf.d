lib/kvstore/store.mli: Idspace Point Prng Tinygroups
