lib/kvstore/store.ml: Adversary Array Hashing Hashtbl Idspace Option Point Prng Replica Ring String Tinygroups
