lib/kvstore/replica.ml: Array Idspace Point Prng
