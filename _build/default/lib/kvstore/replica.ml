open Idspace

type version = int

type state =
  | Missing
  | Stored of { version : version; value : string }

type t = {
  members_ : Point.t array;
  member_bad : bool array;
  states : state array;
}

let create ~members ~member_bad =
  if Array.length members <> Array.length member_bad then
    invalid_arg "Replica.create: array length mismatch";
  if Array.length members = 0 then invalid_arg "Replica.create: empty group";
  {
    members_ = members;
    member_bad;
    states = Array.make (Array.length members) Missing;
  }

let members t = t.members_

let write t ~version ~value =
  Array.iteri
    (fun i bad ->
      if not bad then
        match t.states.(i) with
        | Stored { version = v; _ } when v >= version -> ()
        | Missing | Stored _ -> t.states.(i) <- Stored { version; value })
    t.member_bad

let degrade rng t ~loss_rate =
  if loss_rate < 0. || loss_rate > 1. then invalid_arg "Replica.degrade";
  Array.iteri
    (fun i bad ->
      if (not bad) && Prng.Rng.bernoulli rng loss_rate then t.states.(i) <- Missing)
    t.member_bad

let read_votes t ~truth_forge =
  Array.mapi
    (fun i bad ->
      if bad then Some (max_int, truth_forge)
      else
        match t.states.(i) with
        | Missing -> None
        | Stored { version; value } -> Some (version, value))
    t.member_bad

let repair t ~version ~value =
  let fixed = ref 0 in
  Array.iteri
    (fun i bad ->
      if not bad then
        match t.states.(i) with
        | Stored { version = v; _ } when v >= version -> ()
        | Missing | Stored _ ->
            t.states.(i) <- Stored { version; value };
            incr fixed)
    t.member_bad;
  !fixed

let good_fresh t ~version =
  let count = ref 0 in
  Array.iteri
    (fun i bad ->
      if not bad then
        match t.states.(i) with
        | Stored { version = v; _ } when v = version -> incr count
        | Missing | Stored _ -> ())
    t.member_bad;
  !count
