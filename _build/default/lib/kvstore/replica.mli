(** Per-member replica state for one record.

    A record's home group holds one replica per member. Good members
    store what they were last told; bad members return garbage when
    asked (their stored state is irrelevant). Versions are
    last-writer-wins counters assigned by the writing client, so a
    read can recognise stale good replicas and repair them. *)

open Idspace

type version = int

type state =
  | Missing  (** Never received the record (joined late, lost it). *)
  | Stored of { version : version; value : string }

type t

val create : members:Point.t array -> member_bad:bool array -> t
(** Fresh replica set for a home group; everything starts
    [Missing]. *)

val members : t -> Point.t array

val write : t -> version:version -> value:string -> unit
(** Deliver a write to every {e good} member (bad members ignore it;
    their replies are forged anyway). Stale versions are ignored
    per-replica (last-writer-wins). *)

val degrade : Prng.Rng.t -> t -> loss_rate:float -> unit
(** Knock out each good member's replica to [Missing] independently
    with the given probability — models crashes/expiry between
    epochs; exercised by read repair. *)

val read_votes : t -> truth_forge:string -> (version * string) option array
(** What each member answers to a read: good members report their
    state ([None] when missing), bad members forge
    [(max_int, truth_forge)] — claiming the newest version, the
    strongest possible lie. *)

val repair : t -> version:version -> value:string -> int
(** Bring stale/missing good members up to the given version; returns
    how many replicas were fixed (the read-repair traffic). *)

val good_fresh : t -> version:version -> int
(** Good members currently holding exactly this version. *)
