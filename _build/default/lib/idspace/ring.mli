(** The population of IDs on the unit ring, with successor queries.

    [suc(x)] — the first ID at or clockwise of a point [x] — is the
    primitive every construction in the paper builds on: key
    responsibility (P2), group membership draws [suc(h1(w,i))]
    (§III-A), and Chord-style finger targets. Backed by a balanced
    set; all operations are logarithmic. *)

type t
(** An immutable snapshot of the ID population. *)

val empty : t

val of_list : Point.t list -> t
val of_array : Point.t array -> t

val add : Point.t -> t -> t
val remove : Point.t -> t -> t
val mem : Point.t -> t -> bool

val cardinal : t -> int

val successor : t -> Point.t -> Point.t option
(** [successor t x] is the first ID encountered at [x] or moving
    clockwise from [x] (i.e. [suc(x)], which may be [x] itself when
    [x] is an ID). [None] iff the ring is empty. *)

val successor_exn : t -> Point.t -> Point.t
(** @raise Not_found when empty. *)

val strict_successor : t -> Point.t -> Point.t option
(** First ID strictly clockwise of [x]; wraps around. With one ID [p],
    [strict_successor t p = Some p]. *)

val predecessor : t -> Point.t -> Point.t option
(** First ID strictly counter-clockwise of [x]; wraps around. *)

val responsibility : t -> Point.t -> Interval.t option
(** [responsibility t id] is the arc of keys whose successor is [id]
    (the arc (pred(id), id]); requires [id] to be in the ring.
    [None] if [id] is absent. With a single ID the arc is the whole
    ring. *)

val to_sorted_array : t -> Point.t array
(** All IDs in increasing ring position. *)

val fold : (Point.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Point.t -> unit) -> t -> unit

val random_member : Prng.Rng.t -> t -> Point.t
(** Uniform member of a non-empty ring. O(n) — intended for test and
    experiment setup, not inner loops (draw from
    {!to_sorted_array} when sampling repeatedly). *)

val populate : Prng.Rng.t -> int -> t
(** [populate rng n] is a ring of [n] independent uniform IDs (the
    paper's u.a.r. placement). Collisions are redrawn, matching the
    continuous model where they are measure-zero. *)
