module Pset = Set.Make (struct
  type t = Point.t

  let compare = Point.compare
end)

type t = Pset.t

let empty = Pset.empty
let of_list ps = Pset.of_list ps
let of_array ps = Pset.of_list (Array.to_list ps)
let add = Pset.add
let remove = Pset.remove
let mem = Pset.mem
let cardinal = Pset.cardinal

let successor t x =
  if Pset.is_empty t then None
  else
    match Pset.find_first_opt (fun id -> Point.compare id x >= 0) t with
    | Some id -> Some id
    | None -> Some (Pset.min_elt t) (* wrap past 1 back to the smallest ID *)

let successor_exn t x =
  match successor t x with Some id -> id | None -> raise Not_found

let strict_successor t x =
  if Pset.is_empty t then None
  else
    match Pset.find_first_opt (fun id -> Point.compare id x > 0) t with
    | Some id -> Some id
    | None -> Some (Pset.min_elt t)

let predecessor t x =
  if Pset.is_empty t then None
  else
    match Pset.find_last_opt (fun id -> Point.compare id x < 0) t with
    | Some id -> Some id
    | None -> Some (Pset.max_elt t)

let responsibility t id =
  if not (Pset.mem id t) then None
  else
    match predecessor t id with
    | None -> None
    | Some p ->
        if Point.equal p id then Some Interval.full
        else Some (Interval.make ~from:p ~until:id)

let to_sorted_array t = Array.of_list (Pset.elements t)

let fold f t init = Pset.fold f t init
let iter f t = Pset.iter f t

let random_member rng t =
  let n = Pset.cardinal t in
  if n = 0 then invalid_arg "Ring.random_member: empty ring";
  let k = Prng.Rng.int rng n in
  let found = ref None in
  let i = ref 0 in
  (try
     Pset.iter
       (fun id ->
         if !i = k then begin
           found := Some id;
           raise Exit
         end;
         incr i)
       t
   with Exit -> ());
  match !found with Some id -> id | None -> assert false

let populate rng n =
  let rec grow acc k =
    if k = 0 then acc
    else
      let p = Point.random rng in
      if Pset.mem p acc then grow acc k else grow (Pset.add p acc) (k - 1)
  in
  grow Pset.empty n
