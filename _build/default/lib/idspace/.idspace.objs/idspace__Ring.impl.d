lib/idspace/ring.ml: Array Interval Point Prng Set
