lib/idspace/interval.mli: Format Point Prng
