lib/idspace/estimate.ml: Float Int64 Point Ring
