lib/idspace/interval.ml: Format Int64 List Point Prng
