lib/idspace/estimate.mli: Point Ring
