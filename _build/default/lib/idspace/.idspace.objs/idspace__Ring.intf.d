lib/idspace/ring.mli: Interval Point Prng
