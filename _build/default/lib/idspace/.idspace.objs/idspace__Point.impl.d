lib/idspace/point.ml: Format Int64 Prng
