lib/idspace/point.mli: Format Prng
