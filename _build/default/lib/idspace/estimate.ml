let log_inverse_gap ring id =
  if Ring.cardinal ring < 2 then invalid_arg "Estimate.log_inverse_gap: need >= 2 IDs";
  let succ =
    match Ring.strict_successor ring id with Some s -> s | None -> assert false
  in
  let gap_units = Point.distance_cw id succ in
  let gap = Int64.to_float gap_units /. Int64.to_float Point.modulus in
  (* Adjacent distinct IDs are at least one unit apart, so gap > 0. *)
  -.log gap

let ln_n ring id = Float.max 1. (log_inverse_gap ring id)

let ln_ln_n ring id = Float.max 1. (log (ln_n ring id))

let group_size ~d ring id =
  let size = int_of_float (ceil (d *. ln_ln_n ring id)) in
  max 3 size

let exact_ln_ln n =
  if n < 3 then 1.
  else Float.max 1. (log (log (float_of_int n)))
