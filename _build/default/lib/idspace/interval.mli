(** Half-open clockwise arcs of the unit ring.

    An interval [(from, until]] is the set of points reached moving
    clockwise from — and excluding — [from], up to and including
    [until]. Intervals are how the paper reasons about responsibility
    for keys (P2), bootstrap neighbourhoods, and the well-spread
    placements of Lemma 5. *)

type t
(** A clockwise arc. *)

val make : from:Point.t -> until:Point.t -> t
(** The arc ([from], [until]]. Equal endpoints denote the full ring. *)

val full : t
(** The whole ring. *)

val of_length_cw : Point.t -> int64 -> t
(** [of_length_cw p len] is the arc of clockwise length [len] starting
    just after [p]; requires [0 < len <= modulus]. *)

val from_ : t -> Point.t
val until_ : t -> Point.t

val length : t -> int64
(** Number of ID-space units in the arc ([modulus] for {!full}). *)

val fraction : t -> float
(** [length] as a fraction of the whole ring. *)

val contains : t -> Point.t -> bool
(** Membership test. *)

val sample : Prng.Rng.t -> t -> Point.t
(** A uniformly random point of the arc. *)

val split : t -> int -> t list
(** [split t k] cuts the arc into [k] consecutive pieces of
    near-equal length (lengths differ by at most one unit);
    requires [k >= 1]. *)

val pp : Format.formatter -> t -> unit
