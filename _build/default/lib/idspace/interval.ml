type t = { from : Point.t; until : Point.t; full : bool }

let make ~from ~until = { from; until; full = Point.equal from until }

let full = { from = Point.zero; until = Point.zero; full = true }

let of_length_cw p len =
  if len <= 0L || len > Point.modulus then invalid_arg "Interval.of_length_cw";
  if len = Point.modulus then { from = p; until = p; full = true }
  else { from = p; until = Point.add_cw p len; full = false }

let from_ t = t.from
let until_ t = t.until

let length t = if t.full then Point.modulus else Point.distance_cw t.from t.until

let fraction t = Int64.to_float (length t) /. Int64.to_float Point.modulus

let contains t p = if t.full then true else Point.in_cw_range ~from:t.from ~until:t.until p

let sample rng t =
  if t.full then Point.random rng
  else begin
    let len = length t in
    (* Rejection-free: uniform offset in [1, len]. *)
    let offset =
      let bits = Int64.logand (Prng.Rng.bits64 rng) Int64.max_int in
      Int64.add 1L (Int64.rem bits len)
    in
    Point.add_cw t.from offset
  end

let split t k =
  if k < 1 then invalid_arg "Interval.split";
  let len = length t in
  let base = Int64.div len (Int64.of_int k) in
  let extra = Int64.to_int (Int64.rem len (Int64.of_int k)) in
  let rec pieces i start acc =
    if i = k then List.rev acc
    else begin
      let piece_len = if i < extra then Int64.add base 1L else base in
      if piece_len = 0L then
        (* Degenerate: more pieces than units; emit empty-arc markers as
           zero-length intervals anchored at [start]. *)
        pieces (i + 1) start acc
      else
        let piece = of_length_cw start piece_len in
        pieces (i + 1) (Point.add_cw start piece_len) (piece :: acc)
    end
  in
  pieces 0 t.from []

let pp fmt t =
  if t.full then Format.fprintf fmt "(full ring)"
  else Format.fprintf fmt "(%a, %a]" Point.pp t.from Point.pp t.until
