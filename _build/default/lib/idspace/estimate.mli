(** Decentralised estimation of [ln n] and [ln ln n].

    Groups have size [Θ(ln ln n)] but no participant knows [n]. The
    paper (§III-A, footnote 15) estimates [ln n] to within a constant
    factor from the nearest-neighbour distance: for u.a.r. IDs the
    clockwise gap [d] between adjacent IDs satisfies
    [alpha''/n^2 <= d <= alpha' ln n / n] w.h.p., so
    [ln(1/d) = Θ(ln n)] and [ln ln (1/d) = ln ln n + O(1)] — robust
    even when the adversary withholds IDs. *)

val log_inverse_gap : Ring.t -> Point.t -> float
(** [log_inverse_gap ring id] is [ln (1/d)] where [d] is the
    fractional clockwise distance from [id] to its successor ID.
    Requires at least two IDs. *)

val ln_n : Ring.t -> Point.t -> float
(** Estimate of [ln n] observed from [id]'s local gap:
    [ln(1/d)], clamped to be at least 1. *)

val ln_ln_n : Ring.t -> Point.t -> float
(** Estimate of [ln ln n]: [ln (ln (1/d))], clamped to at least 1. *)

val group_size : d:float -> Ring.t -> Point.t -> int
(** [group_size ~d ring id] is the group size [ceil (d * ln ln n)]
    that [id] derives from its local estimate, clamped to at least 3
    (a majority needs three members). *)

val exact_ln_ln : int -> float
(** [exact_ln_ln n] is [ln (ln n)] for reference comparisons,
    clamped to at least 1. *)
