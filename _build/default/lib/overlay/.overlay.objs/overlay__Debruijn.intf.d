lib/overlay/debruijn.mli: Idspace Overlay_intf Ring
