lib/overlay/overlay_intf.ml: Idspace List Point Ring
