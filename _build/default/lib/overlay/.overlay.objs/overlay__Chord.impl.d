lib/overlay/chord.ml: Hashtbl Idspace Int64 List Overlay_intf Point Ring
