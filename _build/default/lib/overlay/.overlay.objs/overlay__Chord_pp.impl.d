lib/overlay/chord_pp.ml: Chord Idspace Int64 List Overlay_intf Point Prng Ring
