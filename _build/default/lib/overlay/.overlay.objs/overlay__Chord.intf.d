lib/overlay/chord.mli: Idspace Overlay_intf Point Ring
