lib/overlay/succ_ring.mli: Idspace Overlay_intf Ring
