lib/overlay/probe.mli: Hashtbl Idspace Overlay_intf Point Prng
