lib/overlay/probe.ml: Array Hashtbl Idspace Interval List Option Overlay_intf Point Prng Ring
