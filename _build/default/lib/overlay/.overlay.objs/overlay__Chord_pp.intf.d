lib/overlay/chord_pp.mli: Idspace Overlay_intf Ring
