lib/overlay/succ_ring.ml: Idspace List Overlay_intf Point Ring
