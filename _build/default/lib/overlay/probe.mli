(** Empirical verification of the P1–P4 properties of an input graph.

    The group-graph analysis (§II) consumes these properties as
    numbers: [D] (search length, P1), the load-balance slack (P2),
    degree (P3), and the congestion constant [C = O(log^c n / n)]
    (P4). This module measures each of them on a concrete overlay so
    experiments can report the constants they actually ran with. *)

open Idspace

type path_stats = {
  searches : int;
  mean_hops : float;
  max_hops : int;
  p99_hops : int;
}

val path_lengths : Prng.Rng.t -> Overlay_intf.t -> searches:int -> path_stats
(** Route [searches] random (source, key) pairs and summarise path
    lengths (number of IDs traversed, P1's [D]). *)

val load_balance : Overlay_intf.t -> float
(** Max over IDs of [n * (fraction of key space owned)] — P2's
    [(1 + delta'')] factor. 1.0 would be perfect balance. *)

type degree_stats = { mean : float; max : int; sampled : int }

val degrees : Prng.Rng.t -> Overlay_intf.t -> sample:int -> degree_stats
(** Out-degree of [sample] random IDs (P3's [|S_w|]). *)

val congestion : Prng.Rng.t -> Overlay_intf.t -> searches:int -> float
(** Empirical congestion: route [searches] random searches, count
    traversals per ID, and return
    [max_id (traversals / searches) * n / ln n] — the constant in
    front of P4's [log n / n] bound (so O(1) output indicates
    congestion [O(log n / n)]). *)

val traversal_counts :
  Prng.Rng.t -> Overlay_intf.t -> searches:int -> (Point.t, int) Hashtbl.t
(** The raw per-ID traversal counts behind {!congestion}; used by the
    responsibility experiments (Lemma 1). *)
