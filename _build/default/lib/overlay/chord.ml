open Idspace

let fingers ring w =
  let acc = ref [] in
  for j = 61 downto 0 do
    let target = Point.add_cw w (Int64.shift_left 1L j) in
    let f = Ring.successor_exn ring target in
    if not (Point.equal f w) then
      match !acc with
      | prev :: _ when Point.equal prev f -> ()
      | _ -> acc := f :: !acc
  done;
  (* Collected from high stride to low; consecutive-dedup above removes
     most duplicates, a final pass removes the rest. *)
  List.sort_uniq Point.compare !acc

let neighbors_of ring w =
  let base = fingers ring w in
  let with_pred =
    match Ring.predecessor ring w with
    | Some p when not (Point.equal p w) -> p :: base
    | _ -> base
  in
  List.sort_uniq Point.compare with_pred

let make ring =
  if Ring.cardinal ring = 0 then invalid_arg "Chord.make: empty ring";
  let table : (int64, Point.t list) Hashtbl.t = Hashtbl.create 1024 in
  let neighbors w =
    let key = Point.to_u62 w in
    match Hashtbl.find_opt table key with
    | Some ns -> ns
    | None ->
        let ns = neighbors_of ring w in
        Hashtbl.add table key ns;
        ns
  in
  let n = Ring.cardinal ring in
  let max_hops =
    let lg = int_of_float (ceil (log (float_of_int (max 2 n)) /. log 2.)) in
    (2 * lg) + 8
  in
  (* Greedy progress strictly decreases the clockwise distance to the
     key, so [n] hops is a hard correctness bound; [max_hops] is the
     expected O(log n) diagnostic. *)
  let hard_bound = n + 1 in
  let route ~src ~key =
    let resp = Ring.successor_exn ring key in
    if Point.equal src resp then [ src ]
    else begin
      let rec go current acc hops =
        if hops > hard_bound then failwith "Chord.route: hop bound exceeded"
        else begin
          let scur =
            match Ring.strict_successor ring current with
            | Some s -> s
            | None -> assert false
          in
          if Point.in_cw_range ~from:current ~until:scur key then
            (* key lands in (current, successor]: successor is
               responsible; final hop. *)
            List.rev (scur :: acc)
          else begin
            (* Closest preceding finger: the neighbour farthest
               clockwise that does not reach the key. *)
            let best =
              List.fold_left
                (fun best u ->
                  let d = Point.distance_cw current u in
                  if
                    d > 0L
                    && Point.in_cw_range ~from:current ~until:key u
                    && (not (Point.equal u key))
                    && d < Point.distance_cw current key
                  then
                    match best with
                    | Some (_, bd) when bd >= d -> best
                    | _ -> Some (u, d)
                  else best)
                None (neighbors current)
            in
            let next = match best with Some (u, _) -> u | None -> scur in
            go next (next :: acc) (hops + 1)
          end
        end
      in
      go src [ src ] 0
    end
  in
  { Overlay_intf.name = "chord"; ring; neighbors; route; max_hops }
