(** The abstract input graph [H] of the paper (§I-C).

    Any DHT-style topology satisfying P1–P4 can serve as the skeleton
    of the group-graph construction:

    - {b P1 (search)}: [route ~src ~key] returns the full search path —
      the IDs traversed, starting at [src] and ending at the ID
      responsible for [key] (its successor on the ring) — of length
      [O(log N)].
    - {b P2 (load balance)}: each ID is responsible for a
      [(1+o(1))/N] fraction of the key space (a property of u.a.r.
      placement, measured by {!Probe}).
    - {b P3 (linking rules)}: [neighbors id] is the deterministic set
      [S_id] derivable by any participant from the ring alone, so
      membership/neighbour claims are verifiable.
    - {b P4 (congestion)}: a random search traverses any fixed ID with
      probability [O(log^c N / N)] (measured by {!Probe}).

    Values of this type are pure views over an immutable
    {!Idspace.Ring.t}: rebuilding after churn means building a fresh
    value, mirroring the paper's epoch-based reconstruction. *)

open Idspace

type t = {
  name : string;  (** Construction name, e.g. ["chord"]. *)
  ring : Ring.t;  (** The ID population the graph is built over. *)
  neighbors : Point.t -> Point.t list;
      (** [neighbors id] is [S_id]: the linking rule applied to [id].
          Deterministic in [ring]; duplicates removed; never contains
          [id] itself unless the ring is a singleton. *)
  route : src:Point.t -> key:Point.t -> Point.t list;
      (** [route ~src ~key] is the inclusive search path from [src] to
          [suc key]. Every consecutive pair is a (directed) neighbour
          link. *)
  max_hops : int;  (** Upper bound on path length (diameter proxy). *)
}

let responsible t key = Ring.successor_exn t.ring key

(** [is_neighbor t u w] checks the linking rule: is [u] in [S_w]? This
    is the verification primitive of P3 used when vetting
    group-membership and neighbour requests. *)
let is_neighbor t u w = List.exists (Point.equal u) (t.neighbors w)

(** [path_ok t path key] validates a claimed search path: non-empty,
    consecutive hops are links, and it ends at the responsible ID. *)
let path_ok t path key =
  match path with
  | [] -> false
  | first :: _ ->
      let rec hops_linked = function
        | a :: (b :: _ as rest) -> is_neighbor t b a && hops_linked rest
        | [ last ] -> Point.equal last (responsible t key)
        | [] -> false
      in
      Ring.mem first t.ring && hops_linked path
