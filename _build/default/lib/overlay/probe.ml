open Idspace

type path_stats = {
  searches : int;
  mean_hops : float;
  max_hops : int;
  p99_hops : int;
}

let random_pair rng members =
  let src = members.(Prng.Rng.int rng (Array.length members)) in
  let key = Point.random rng in
  (src, key)

let path_lengths rng (t : Overlay_intf.t) ~searches =
  let members = Ring.to_sorted_array t.ring in
  let lengths = Array.make searches 0 in
  for i = 0 to searches - 1 do
    let src, key = random_pair rng members in
    lengths.(i) <- List.length (t.route ~src ~key)
  done;
  Array.sort compare lengths;
  let total = Array.fold_left ( + ) 0 lengths in
  {
    searches;
    mean_hops = float_of_int total /. float_of_int searches;
    max_hops = lengths.(searches - 1);
    p99_hops = lengths.(min (searches - 1) (searches * 99 / 100));
  }

let load_balance (t : Overlay_intf.t) =
  let n = Ring.cardinal t.ring in
  let worst = ref 0. in
  Ring.iter
    (fun id ->
      match Ring.responsibility t.ring id with
      | Some arc ->
          let share = Interval.fraction arc *. float_of_int n in
          if share > !worst then worst := share
      | None -> ())
    t.ring;
  !worst

type degree_stats = { mean : float; max : int; sampled : int }

let degrees rng (t : Overlay_intf.t) ~sample =
  let members = Ring.to_sorted_array t.ring in
  let sample = min sample (Array.length members) in
  let picks = Prng.Rng.sample_without_replacement rng sample (Array.length members) in
  let total = ref 0 and worst = ref 0 in
  Array.iter
    (fun i ->
      let d = List.length (t.neighbors members.(i)) in
      total := !total + d;
      if d > !worst then worst := d)
    picks;
  { mean = float_of_int !total /. float_of_int sample; max = !worst; sampled = sample }

let traversal_counts rng (t : Overlay_intf.t) ~searches =
  let members = Ring.to_sorted_array t.ring in
  let counts : (Point.t, int) Hashtbl.t = Hashtbl.create 4096 in
  for _ = 1 to searches do
    let src, key = random_pair rng members in
    List.iter
      (fun id ->
        let c = Option.value ~default:0 (Hashtbl.find_opt counts id) in
        Hashtbl.replace counts id (c + 1))
      (t.route ~src ~key)
  done;
  counts

let congestion rng t ~searches =
  let counts = traversal_counts rng t ~searches in
  let worst = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  let n = float_of_int (Ring.cardinal t.Overlay_intf.ring) in
  float_of_int worst /. float_of_int searches *. n /. log n
