(** Ben-Or's randomized Byzantine agreement (1983), synchronous
    simulation.

    A complement to {!Phase_king}: no king, no phase schedule — each
    round every processor reports its preference, ratifies a value
    seen in a super-majority, and falls back to a local coin when the
    adversary keeps the group split. Tolerates [t < g/5] Byzantine
    processors; termination is probabilistic (expected constant
    rounds at the group sizes the construction uses, since one lucky
    unanimous coin flip finishes).

    Groups could run either protocol; having both lets the test suite
    cross-validate the agreement layer and the bench compare their
    costs. *)

type outcome = {
  decisions : bool option array;
      (** Per-processor decision; [None] for Byzantine members and
          for good members that did not decide within the round
          cap. *)
  rounds : int;
  messages : int;
}

val run :
  Prng.Rng.t ->
  inputs:bool array ->
  byzantine:bool array ->
  behaviour:Phase_king.byzantine_behaviour ->
  max_rounds:int ->
  outcome
(** Simulate until every good processor has decided or [max_rounds]
    passes. Guarantees (for [5 t < g]): good deciders agree, and a
    unanimous good input is decided in the first round. *)

val tolerates : g:int -> t:int -> bool
(** [5 t < g]. *)
