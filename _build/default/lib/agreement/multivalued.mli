(** Multi-valued Byzantine agreement: the phase-king scheme lifted
    from bits to arbitrary comparable values.

    Group decisions are rarely binary — members agree on a member
    list, a minimum random string, a stored record. The two-round
    phase-king structure generalises verbatim: round one takes the
    plurality of reported values, round two defers to the king unless
    one's own plurality was overwhelming ([> g/2 + t]). Same fault
    bound as the binary protocol ([4 t < g]), [t + 1] phases.

    Values are compared with polymorphic equality and must admit
    hashing (use simple payload types); ties break toward the
    smallest value under [compare] so the protocol stays
    deterministic given the message trace. *)

type 'a outcome = {
  decisions : 'a option array;
      (** [None] for Byzantine processors. *)
  rounds : int;
  messages : int;
}

val run :
  inputs:'a array ->
  byzantine:bool array ->
  forge:(sender:int -> recipient:int -> round:int -> 'a option) ->
  'a outcome
(** [run ~inputs ~byzantine ~forge] — [forge] chooses every Byzantine
    message per (sender, recipient, round); [None] stays silent.
    Guarantees for [4 t < g]: agreement among good processors, and
    validity (a unanimous good input wins). *)

val tolerates : g:int -> t:int -> bool
(** [4 t < g]. *)
