(** The secure inter-group communication primitive (paper §I):
    all-to-all transmission followed by majority filtering.

    When group [G1] sends a value to group [G2], every member of [G1]
    transmits to every member of [G2] and each good member of [G2]
    keeps the majority of what it received. Correctness needs only a
    good majority in [G1]; the message cost is [|G1| * |G2|] — the
    [Θ(|G|^2)] that makes group size matter. *)

type 'a result = {
  delivered : 'a option array;
      (** Per-recipient value after majority filtering; [None] when no
          value reached a strict majority (possible only when the
          sender group lacks a good majority). Indexed like the
          recipient array. *)
  messages : int;  (** Point-to-point messages sent. *)
}

val send :
  sender_good : bool array ->
  receiver_count : int ->
  value : 'a ->
  forge : (recipient:int -> 'a option) ->
  'a result
(** [send ~sender_good ~receiver_count ~value ~forge] models one
    group-to-group transfer: good senders ([sender_good.(i) = true])
    all send [value]; each bad sender sends [forge ~recipient] (or
    stays silent on [None]) to each recipient. Every recipient takes
    the strict-majority value of what arrived, counting the sender
    group's full size as the quorum denominator.

    Values are compared with polymorphic equality; use simple payload
    types. *)

val relay_cost : group_size:int -> hops:int -> int
(** Message cost of routing across [hops] group-graph edges with
    all-to-all exchanges: [hops * group_size^2] — the paper's
    [O(D |G|^2)]. *)
