type outcome = {
  value : int64;
  messages : int;
  reconstructed : int;
  excluded : int;
}

type byzantine_plan = {
  withhold_if_output_even : bool;
}

let parity v = Int64.logand v 1L = 0L

(* One commit(+share)-reveal round; returns the full XOR (all
   committed values), the honest-only XOR, and whether the coalition
   aborted its reveals. *)
let round rng ~good ~bad ~plan =
  let honest_values = Array.init good (fun _ -> Prng.Rng.bits64 rng) in
  let bad_values = Array.init bad (fun _ -> Prng.Rng.bits64 rng) in
  let honest_xor = Array.fold_left Int64.logxor 0L honest_values in
  let full_xor = Array.fold_left Int64.logxor honest_xor bad_values in
  let abort = plan.withhold_if_output_even && bad > 0 && parity full_xor in
  (full_xor, honest_xor, abort)

let run rng ~good ~bad ~plan =
  if good < 1 then invalid_arg "Commit_reveal.run: need at least one good member";
  if bad < 0 then invalid_arg "Commit_reveal.run: negative bad count";
  if bad >= good then invalid_arg "Commit_reveal.run: reconstruction needs a good majority";
  let total = good + bad in
  let full_xor, _, abort = round rng ~good ~bad ~plan in
  (* Commit broadcast + share distribution + reveals. *)
  let commit_msgs = total * (total - 1) in
  let share_msgs = total * (total - 1) in
  let reveal_msgs = (good + if abort then 0 else bad) * (total - 1) in
  (* Recovery: each withheld value is reconstructed by pooling shares
     (every good member sends its share of each missing value). *)
  let reconstructed = if abort then bad else 0 in
  let recovery_msgs = reconstructed * good in
  {
    value = full_xor;
    messages = commit_msgs + share_msgs + reveal_msgs + recovery_msgs;
    reconstructed;
    excluded = (if abort then bad else 0);
  }

let parity_bias rng ~trials ~good ~bad ~recovery =
  if trials < 1 then invalid_arg "Commit_reveal.parity_bias";
  let plan = { withhold_if_output_even = true } in
  let even = ref 0 in
  for _ = 1 to trials do
    let v =
      if recovery then (run rng ~good ~bad ~plan).value
      else begin
        (* Naive variant: withheld reveals are silently dropped, so
           the coalition's conditional veto stands. *)
        let full_xor, honest_xor, abort = round rng ~good ~bad ~plan in
        if abort then honest_xor else full_xor
      end
    in
    if parity v then incr even
  done;
  float_of_int !even /. float_of_int trials
