type 'a outcome = {
  decisions : 'a option array;
  rounds : int;
  messages : int;
}

let tolerates ~g ~t = 4 * t < g

(* Plurality of the received values: the most frequent value, ties
   toward the smallest under [compare] for determinism. Returns the
   winner and its count; [None] when nothing was received. *)
let plurality row =
  let tally = Hashtbl.create 8 in
  Array.iter
    (function
      | Some v ->
          Hashtbl.replace tally v (1 + Option.value ~default:0 (Hashtbl.find_opt tally v))
      | None -> ())
    row;
  Hashtbl.fold
    (fun v c best ->
      match best with
      | Some (bv, bc) when bc > c || (bc = c && compare bv v <= 0) -> best
      | _ -> Some (v, c))
    tally None

let run ~inputs ~byzantine ~forge =
  let g = Array.length inputs in
  if g = 0 then invalid_arg "Multivalued.run: empty group";
  if Array.length byzantine <> g then invalid_arg "Multivalued.run: array length mismatch";
  let t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 byzantine in
  let pref = Array.copy inputs in
  let messages = ref 0 in
  let rounds = ref 0 in
  let exchange ~round value_of =
    incr rounds;
    let received = Array.make_matrix g g None in
    for i = 0 to g - 1 do
      for j = 0 to g - 1 do
        let m =
          if byzantine.(i) then forge ~sender:i ~recipient:j ~round
          else Some (value_of i)
        in
        (match m with Some _ -> incr messages | None -> ());
        received.(j).(i) <- m
      done
    done;
    received
  in
  for k = 0 to t do
    (* Round 1: universal exchange of preferences. *)
    let received = exchange ~round:(2 * k) (fun i -> pref.(i)) in
    let maj = Array.make g None in
    let maj_count = Array.make g 0 in
    for j = 0 to g - 1 do
      match plurality received.(j) with
      | Some (v, c) ->
          maj.(j) <- Some v;
          maj_count.(j) <- c
      | None -> ()
    done;
    (* Round 2: the king broadcasts its plurality value. *)
    let king = k mod g in
    incr rounds;
    let king_value = Array.make g None in
    for j = 0 to g - 1 do
      let m =
        if byzantine.(king) then forge ~sender:king ~recipient:j ~round:((2 * k) + 1)
        else maj.(king)
      in
      (match m with Some _ -> incr messages | None -> ());
      king_value.(j) <- m
    done;
    for j = 0 to g - 1 do
      if not byzantine.(j) then
        if maj_count.(j) > (g / 2) + t then
          (match maj.(j) with Some v -> pref.(j) <- v | None -> ())
        else begin
          match king_value.(j) with
          | Some v -> pref.(j) <- v
          | None -> () (* a silent king leaves the preference alone *)
        end
    done
  done;
  let decisions =
    Array.init g (fun i -> if byzantine.(i) then None else Some pref.(i))
  in
  { decisions; rounds = !rounds; messages = !messages }
