type 'a result = {
  delivered : 'a option array;
  messages : int;
}

let send ~sender_good ~receiver_count ~value ~forge =
  let g1 = Array.length sender_good in
  if g1 = 0 then invalid_arg "Broadcast.send: empty sender group";
  if receiver_count <= 0 then invalid_arg "Broadcast.send: no receivers";
  let messages = ref 0 in
  let delivered =
    Array.init receiver_count (fun j ->
        (* Tally what recipient [j] hears from each sender. *)
        let tally : ('a, int) Hashtbl.t = Hashtbl.create 8 in
        let heard = ref 0 in
        for i = 0 to g1 - 1 do
          let m = if sender_good.(i) then Some value else forge ~recipient:j in
          match m with
          | Some v ->
              incr messages;
              incr heard;
              let c = Option.value ~default:0 (Hashtbl.find_opt tally v) in
              Hashtbl.replace tally v (c + 1)
          | None -> ()
        done;
        ignore !heard;
        (* Strict majority over the full sender-group size: silence
           cannot manufacture a quorum. *)
        let winner =
          Hashtbl.fold
            (fun v c best ->
              match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
            tally None
        in
        match winner with
        | Some (v, c) when 2 * c > g1 -> Some v
        | _ -> None)
  in
  { delivered; messages = !messages }

let relay_cost ~group_size ~hops = hops * group_size * group_size
