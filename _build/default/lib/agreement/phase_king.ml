type outcome = {
  decisions : bool option array;
  rounds : int;
  messages : int;
}

type byzantine_behaviour =
  | Silent
  | Random
  | Equivocate
  | Collude_against of bool

let tolerates ~g ~t = 4 * t < g

(* What faulty processor [i] sends to recipient [j] this round, if
   anything. [honest] is what the protocol would have it send. *)
let byz_message rng behaviour ~recipient ~g ~honest:_ =
  match behaviour with
  | Silent -> None
  | Random -> Some (Prng.Rng.bool rng)
  | Equivocate -> Some (recipient >= g / 2)
  | Collude_against v -> Some (not v)

let run rng ~inputs ~byzantine ~behaviour =
  let g = Array.length inputs in
  if g = 0 then invalid_arg "Phase_king.run: empty group";
  if Array.length byzantine <> g then invalid_arg "Phase_king.run: array length mismatch";
  let t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 byzantine in
  let pref = Array.copy inputs in
  let messages = ref 0 in
  let rounds = ref 0 in
  (* One all-to-all exchange: sender i sends [value i] (good) or the
     behaviour's choice (bad); returns the matrix received.(j).(i). *)
  let exchange value =
    incr rounds;
    let received = Array.make_matrix g g None in
    for i = 0 to g - 1 do
      for j = 0 to g - 1 do
        let m =
          if byzantine.(i) then
            byz_message rng behaviour ~recipient:j ~g ~honest:(value i)
          else Some (value i)
        in
        (match m with Some _ -> incr messages | None -> ());
        received.(j).(i) <- m
      done
    done;
    received
  in
  for k = 0 to t do
    (* Round 1: universal exchange of preferences. *)
    let received = exchange (fun i -> pref.(i)) in
    let maj = Array.make g false in
    let maj_count = Array.make g 0 in
    for j = 0 to g - 1 do
      let ones = ref 0 and zeros = ref 0 in
      Array.iter
        (function
          | Some true -> incr ones
          | Some false -> incr zeros
          | None -> incr zeros (* missing counts as the default value *))
        received.(j);
      if !ones > !zeros then begin
        maj.(j) <- true;
        maj_count.(j) <- !ones
      end
      else begin
        maj.(j) <- false;
        maj_count.(j) <- !zeros
      end
    done;
    (* Round 2: the phase king broadcasts its majority value. *)
    let king = k mod g in
    incr rounds;
    let king_value = Array.make g false in
    for j = 0 to g - 1 do
      let m =
        if byzantine.(king) then
          byz_message rng behaviour ~recipient:j ~g ~honest:maj.(king)
        else Some maj.(king)
      in
      (match m with
      | Some v ->
          incr messages;
          king_value.(j) <- v
      | None -> king_value.(j) <- false);
      ()
    done;
    (* Update preferences: keep own majority only when it is
       overwhelming (> g/2 + t), otherwise defer to the king. *)
    for j = 0 to g - 1 do
      if not byzantine.(j) then
        if maj_count.(j) > (g / 2) + t then pref.(j) <- maj.(j)
        else pref.(j) <- king_value.(j)
    done
  done;
  let decisions =
    Array.init g (fun i -> if byzantine.(i) then None else Some pref.(i))
  in
  { decisions; rounds = !rounds; messages = !messages }
