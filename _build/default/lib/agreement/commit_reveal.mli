(** Group random-number generation by commit–reveal with share-based
    recovery (the task the paper cites as canonical group
    communication: Awerbuch–Scheideler [8], "Robust Random Number
    Generation", and [18]).

    Every member commits to a local random value {e and distributes
    shares of it} to the whole group; then all reveal, and the
    group's output is the XOR of every committed value. A Byzantine
    member cannot choose its value after seeing others' (the
    commitment binds), and withholding its reveal achieves nothing:
    the good majority reconstructs the value from the shares and
    expels the aborter. Without the recovery step (the naive
    variant), a colluding coalition gets one conditional veto —
    reveal or abort after seeing everything — which measurably biases
    the output (the test suite shows the naive parity landing near
    1/4 instead of 1/2; the restart-only defence is {e also} biased,
    which is exactly why [8] needs shares).

    Cost: commit, share and reveal rounds at [Theta(g^2)] messages
    each — a concrete instance of the group-communication cost of
    §I(i). *)

type outcome = {
  value : int64;  (** The group's random output. *)
  messages : int;
  reconstructed : int;  (** Withheld values recovered from shares. *)
  excluded : int;  (** Members expelled for aborting. *)
}

type byzantine_plan = {
  withhold_if_output_even : bool;
      (** The bias attack: after seeing all honest reveals, the
          coalition withholds its reveals whenever publishing them
          would make the XOR's low bit even. [false] = behave. *)
}

val run :
  Prng.Rng.t ->
  good:int ->
  bad:int ->
  plan:byzantine_plan ->
  outcome
(** Execute the protocol in a group of [good + bad] members with a
    good majority (required for reconstruction:
    [good > bad]). The output XORs every member's committed value, so
    it is uniform whatever the plan. *)

val parity_bias : Prng.Rng.t -> trials:int -> good:int -> bad:int -> recovery:bool -> float
(** Measure the attack: fraction of [trials] whose output has even
    parity, with ([recovery = true], the protocol above) or without
    ([false], the naive drop-the-abort variant) share recovery.
    0.5 is unbiased. *)
