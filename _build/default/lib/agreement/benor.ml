type outcome = {
  decisions : bool option array;
  rounds : int;
  messages : int;
}

let tolerates ~g ~t = 5 * t < g

(* What a faulty processor sends for an optional-value broadcast. *)
let byz_optional rng behaviour ~recipient ~g =
  match (behaviour : Phase_king.byzantine_behaviour) with
  | Phase_king.Silent -> None
  | Phase_king.Random -> Some (Prng.Rng.bool rng)
  | Phase_king.Equivocate -> Some (recipient >= g / 2)
  | Phase_king.Collude_against v -> Some (not v)

let run rng ~inputs ~byzantine ~behaviour ~max_rounds =
  let g = Array.length inputs in
  if g = 0 then invalid_arg "Benor.run: empty group";
  if Array.length byzantine <> g then invalid_arg "Benor.run: array length mismatch";
  let t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 byzantine in
  let pref = Array.copy inputs in
  let decided : bool option array = Array.make g None in
  let messages = ref 0 in
  let rounds = ref 0 in
  (* One broadcast step: returns received.(recipient).(sender). *)
  let exchange value_of =
    let received = Array.make_matrix g g None in
    for i = 0 to g - 1 do
      for j = 0 to g - 1 do
        let m =
          if byzantine.(i) then byz_optional rng behaviour ~recipient:j ~g
          else value_of i
        in
        (match m with Some _ -> incr messages | None -> ());
        received.(j).(i) <- m
      done
    done;
    received
  in
  let count row v =
    Array.fold_left
      (fun acc m -> match m with Some x when Bool.equal x v -> acc + 1 | _ -> acc)
      0 row
  in
  let all_good_decided () =
    let ok = ref true in
    Array.iteri (fun i b -> if (not b) && decided.(i) = None then ok := false) byzantine;
    !ok
  in
  let super_majority = (g + t) / 2 in
  while (not (all_good_decided ())) && !rounds < max_rounds do
    incr rounds;
    (* Phase 1: report preferences (deciders report their decision). *)
    let reports =
      exchange (fun i ->
          match decided.(i) with Some v -> Some v | None -> Some pref.(i))
    in
    let ratify = Array.make g None in
    for j = 0 to g - 1 do
      if not byzantine.(j) then begin
        if count reports.(j) true > super_majority then ratify.(j) <- Some true
        else if count reports.(j) false > super_majority then ratify.(j) <- Some false
      end
    done;
    (* Phase 2: ratifications. *)
    let rats =
      exchange (fun i ->
          match decided.(i) with Some v -> Some v | None -> ratify.(i))
    in
    for j = 0 to g - 1 do
      if (not byzantine.(j)) && decided.(j) = None then begin
        let ct = count rats.(j) true and cf = count rats.(j) false in
        let adopt v cnt =
          if cnt > super_majority then decided.(j) <- Some v;
          pref.(j) <- v
        in
        if ct >= t + 1 && ct >= cf then adopt true ct
        else if cf >= t + 1 then adopt false cf
        else pref.(j) <- Prng.Rng.bool rng
      end
    done
  done;
  let decisions =
    Array.init g (fun i -> if byzantine.(i) then None else decided.(i))
  in
  { decisions; rounds = !rounds; messages = !messages }
