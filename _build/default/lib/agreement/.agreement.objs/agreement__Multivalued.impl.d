lib/agreement/multivalued.ml: Array Hashtbl Option
