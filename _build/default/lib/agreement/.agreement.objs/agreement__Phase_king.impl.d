lib/agreement/phase_king.ml: Array Prng
