lib/agreement/multivalued.mli:
