lib/agreement/broadcast.ml: Array Hashtbl Option
