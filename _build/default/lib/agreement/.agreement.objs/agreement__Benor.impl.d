lib/agreement/benor.ml: Array Bool Phase_king Prng
