lib/agreement/broadcast.mli:
