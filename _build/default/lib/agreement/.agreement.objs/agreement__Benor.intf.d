lib/agreement/benor.mli: Phase_king Prng
