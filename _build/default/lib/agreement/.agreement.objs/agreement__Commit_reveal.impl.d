lib/agreement/commit_reveal.ml: Array Int64 Prng
