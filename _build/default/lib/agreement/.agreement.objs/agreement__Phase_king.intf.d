lib/agreement/phase_king.mli: Prng
