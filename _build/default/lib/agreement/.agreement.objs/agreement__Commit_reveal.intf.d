lib/agreement/commit_reveal.mli: Prng
