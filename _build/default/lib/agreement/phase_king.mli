(** Synchronous binary Byzantine agreement by the Phase-King
    algorithm (Berman–Garay–Perry style, two rounds per phase, after
    Attiya and Welch §5.2.6).

    Groups use Byzantine agreement to "simulate a reliable processor"
    (paper §I): every group decision — accepting a member, answering
    a search, choosing a minimum string — is a BA instance among the
    [Θ(log log n)] members. This implementation tolerates [t < g/4]
    Byzantine members in [t + 1] phases of two rounds each and
    [O(t g^2)] messages, which the paper's "sufficiently small β"
    regime satisfies.

    The simulation is synchronous and adversarial: Byzantine members
    are driven by a callback that sees the full network state
    (perfect collusion, full knowledge — §I-C's adversary) and may
    equivocate arbitrarily per recipient. *)

type outcome = {
  decisions : bool option array;
      (** Per-processor decision; [None] for Byzantine members (their
          output is meaningless). *)
  rounds : int;  (** Synchronous rounds executed. *)
  messages : int;  (** Point-to-point messages sent (including by
                       Byzantine members). *)
}

type byzantine_behaviour =
  | Silent  (** Send nothing. *)
  | Random  (** Independent coin per recipient per round. *)
  | Equivocate
      (** Tell the first half of recipients [false] and the rest
          [true] every round; kings lie the same way. *)
  | Collude_against of bool
      (** Push the group away from the given value: always send its
          negation. *)

val run :
  Prng.Rng.t ->
  inputs:bool array ->
  byzantine:bool array ->
  behaviour:byzantine_behaviour ->
  outcome
(** [run rng ~inputs ~byzantine ~behaviour] executes phase king over
    [g = Array.length inputs] processors, of which [byzantine.(i)]
    marks the faulty ones. Arrays must have equal lengths and [g >= 1].

    Guarantees (when [#byzantine < g/4]): all good processors decide
    the same value (agreement), and if all good inputs agree, that
    value is decided (validity). These are checked by the test suite,
    not by this function. *)

val tolerates : g:int -> t:int -> bool
(** [tolerates ~g ~t] is [4 * t < g], the fault bound of this
    protocol. *)
